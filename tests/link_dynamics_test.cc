// Mid-run link dynamics: Link::set_rate / set_prop_delay semantics (the
// in-flight packet finishes at the old rate, the queue drains at the new
// rate, rate zero parks the link and a later set_rate unparks it), the
// zero/near-zero serialization-time guard, the LinkScheduleDriver, and
// NetBuilder's declarative event timeline (validation death tests included).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/net/link.h"
#include "src/net/link_schedule.h"
#include "src/net/monitors.h"
#include "src/qdisc/fifo.h"
#include "src/topo/net_builder.h"

namespace bundler {
namespace {

TimePoint At(double s) { return TimePoint::Zero() + TimeDelta::SecondsF(s); }

Packet DataPacket(uint32_t size_bytes) {
  FlowKey key;
  key.src = MakeAddress(1, 1);
  key.dst = MakeAddress(2, 1);
  key.protocol = 6;
  return MakeDataPacket(/*flow_id=*/7, key, /*seq=*/0, size_bytes);
}

// Harness: a link into a recording sink. 1 Mbit/s serializes a 1000-byte
// packet in exactly 8 ms, which keeps expected arrival times round.
struct LinkHarness {
  explicit LinkHarness(Rate rate, TimeDelta prop = TimeDelta::Zero(),
                       int64_t buffer = 1 << 20)
      : sink([this](Packet p) {
          arrivals.push_back(sim.now());
          bytes += p.size_bytes;
        }),
        link(&sim, "dyn", rate, prop, std::make_unique<DropTailFifo>(buffer), &sink) {}

  Simulator sim;
  std::vector<TimePoint> arrivals;
  int64_t bytes = 0;
  LambdaHandler sink;
  Link link;
};

TEST(LinkDynamicsTest, MidTransmissionRateChangeKeepsOldFinishTime) {
  LinkHarness h(Rate::Mbps(1));
  h.link.HandlePacket(DataPacket(1000));  // serialization: 8 ms at 1 Mbit/s
  // Raise the rate 1 ms into the transmission: the in-flight packet still
  // finishes at its original 8 ms deadline.
  h.sim.ScheduleAt(At(0.001), [&]() { h.link.set_rate(Rate::Mbps(8)); });
  h.sim.RunAll();
  ASSERT_EQ(h.arrivals.size(), 1u);
  EXPECT_EQ(h.arrivals[0], At(0.008));
}

TEST(LinkDynamicsTest, QueueDrainsAtNewRate) {
  LinkHarness h(Rate::Mbps(1));
  for (int i = 0; i < 3; ++i) {
    h.link.HandlePacket(DataPacket(1000));
  }
  // 8x the rate mid-first-packet: packets 2 and 3 serialize in 1 ms each.
  h.sim.ScheduleAt(At(0.001), [&]() { h.link.set_rate(Rate::Mbps(8)); });
  h.sim.RunAll();
  ASSERT_EQ(h.arrivals.size(), 3u);
  EXPECT_EQ(h.arrivals[0], At(0.008));
  EXPECT_EQ(h.arrivals[1], At(0.009));
  EXPECT_EQ(h.arrivals[2], At(0.010));
}

TEST(LinkDynamicsTest, RateZeroParksAndSetRateResumes) {
  LinkHarness h(Rate::Mbps(1));
  h.sim.ScheduleAt(At(0.010), [&]() {
    h.link.set_rate(Rate::Zero());
    EXPECT_TRUE(h.link.parked());
    h.link.HandlePacket(DataPacket(1000));
    h.link.HandlePacket(DataPacket(1000));
  });
  h.sim.ScheduleAt(At(0.050), [&]() { h.link.set_rate(Rate::Mbps(1)); });
  h.sim.RunAll();
  // Both packets wait out the 40 ms park, then drain back-to-back.
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[0], At(0.058));
  EXPECT_EQ(h.arrivals[1], At(0.066));
  EXPECT_FALSE(h.link.parked());
  EXPECT_EQ(h.link.stats().packets_sent, 2u);
}

TEST(LinkDynamicsTest, ParkAfterInFlightLetsItFinish) {
  LinkHarness h(Rate::Mbps(1));
  h.link.HandlePacket(DataPacket(1000));
  h.link.HandlePacket(DataPacket(1000));
  // Park 1 ms into the first packet: it still completes at 8 ms; the second
  // stays queued until the unpark at 20 ms.
  h.sim.ScheduleAt(At(0.001), [&]() { h.link.set_rate(Rate::Zero()); });
  h.sim.ScheduleAt(At(0.020), [&]() { h.link.set_rate(Rate::Mbps(1)); });
  h.sim.RunAll();
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[0], At(0.008));
  EXPECT_EQ(h.arrivals[1], At(0.028));
}

TEST(LinkDynamicsTest, ParkedLinkDropsPerQueuePolicyNotSilently) {
  // Buffer of two packets: during a park the third arrival must drop at the
  // qdisc (counted), not vanish or crash.
  LinkHarness h(Rate::Mbps(1), TimeDelta::Zero(), /*buffer=*/2 * 1000);
  h.link.set_rate(Rate::Zero());
  for (int i = 0; i < 3; ++i) {
    h.link.HandlePacket(DataPacket(1000));
  }
  h.sim.ScheduleAt(At(0.010), [&]() { h.link.set_rate(Rate::Mbps(1)); });
  h.sim.RunAll();
  EXPECT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.link.stats().drops, 1u);
  EXPECT_EQ(h.link.stats().packets_sent, 2u);
}

TEST(LinkDynamicsTest, NearZeroRateRegressionNoOverflow) {
  // Regression: a pathological (positive but unusably slow) LinkSpec rate
  // used to overflow the serialization-time cast into a negative delay and
  // CHECK-fail deep in the engine. It must now park cleanly.
  LinkHarness h(Rate::BitsPerSec(1e-9));
  EXPECT_TRUE(h.link.parked());
  h.link.HandlePacket(DataPacket(1000));
  h.sim.ScheduleAt(At(0.001), [&]() { h.link.set_rate(Rate::Mbps(1)); });
  h.sim.RunAll();
  ASSERT_EQ(h.arrivals.size(), 1u);
  EXPECT_EQ(h.arrivals[0], At(0.009));
}

TEST(LinkDynamicsTest, TransmitTimeSaturatesInsteadOfOverflowing) {
  EXPECT_TRUE(Rate::Zero().TransmitTime(1500).IsInfinite());
  EXPECT_TRUE(Rate::BitsPerSec(1e-12).TransmitTime(1500).IsInfinite());
  EXPECT_FALSE(Rate::BitsPerSec(1.0).TransmitTime(1500).IsInfinite());
  EXPECT_GT(Rate::BitsPerSec(1e-12).TransmitTime(1500), TimeDelta::Seconds(1));
}

TEST(LinkDynamicsTest, PropDelayChangeAppliesToLaterPackets) {
  LinkHarness h(Rate::Mbps(1), TimeDelta::Millis(10));
  h.link.HandlePacket(DataPacket(1000));  // finishes serializing at 8 ms
  h.link.HandlePacket(DataPacket(1000));  // finishes serializing at 16 ms
  // Change the delay while the first packet is propagating: it keeps its
  // 10 ms, the second (still serializing) picks up the new 2 ms.
  h.sim.ScheduleAt(At(0.009), [&]() { h.link.set_prop_delay(TimeDelta::Millis(2)); });
  h.sim.RunAll();
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[0], At(0.018));
  EXPECT_EQ(h.arrivals[1], At(0.018));  // 16 ms + 2 ms
}

TEST(LinkDynamicsTest, ObserverCountersConsistentAcrossPark) {
  LinkHarness h(Rate::Mbps(1));
  QueueDelayMonitor qmon;
  RateMeter meter(&h.sim, TimeDelta::Millis(10));
  h.link.AddObserver(&qmon);
  h.link.AddObserver(&meter);
  h.link.set_rate(Rate::Zero());
  h.link.HandlePacket(DataPacket(1000));
  h.sim.ScheduleAt(At(0.030), [&]() { h.link.set_rate(Rate::Mbps(1)); });
  h.sim.RunAll();
  // The parked sojourn counts as queue delay; the meter sees every byte the
  // link sent.
  ASSERT_EQ(qmon.delay_ms().size(), 1u);
  EXPECT_DOUBLE_EQ(qmon.delay_ms().samples()[0].value, 30.0);
  EXPECT_EQ(meter.total_bytes(), h.bytes);
  EXPECT_EQ(h.link.stats().bytes_sent, h.bytes);
}

TEST(LinkScheduleDriverTest, AppliesTimelineInOrder) {
  LinkHarness h(Rate::Mbps(1));
  std::vector<LinkEventSpec> events;
  events.push_back({At(0.005), Rate::Mbps(8), false, TimeDelta::Zero()});
  events.push_back({At(0.010), Rate::Mbps(2), true, TimeDelta::Millis(3)});
  LinkScheduleDriver driver(&h.sim, &h.link, events);
  h.sim.RunUntil(At(0.007));
  EXPECT_EQ(h.link.rate(), Rate::Mbps(8));
  EXPECT_EQ(h.link.prop_delay(), TimeDelta::Zero());
  EXPECT_EQ(driver.fired(), 1u);
  EXPECT_FALSE(driver.done());
  h.sim.RunUntil(At(0.020));
  EXPECT_EQ(h.link.rate(), Rate::Mbps(2));
  EXPECT_EQ(h.link.prop_delay(), TimeDelta::Millis(3));
  EXPECT_EQ(driver.fired(), 2u);
  EXPECT_TRUE(driver.done());
}

TEST(LinkScheduleDriverTest, RepeatingTraceLoops) {
  LinkHarness h(Rate::Mbps(4));
  std::vector<LinkEventSpec> events;
  events.push_back({At(0.001), Rate::Mbps(1), false, TimeDelta::Zero()});
  events.push_back({At(0.002), Rate::Mbps(4), false, TimeDelta::Zero()});
  LinkScheduleDriver driver(&h.sim, &h.link, events, TimeDelta::Millis(4));
  h.sim.RunUntil(At(0.0215));  // 5 full cycles + the 6th cycle's first event
  EXPECT_EQ(driver.fired(), 11u);
  EXPECT_EQ(h.link.rate(), Rate::Mbps(1));
  EXPECT_FALSE(driver.done());
}

NetBuilder TwoSiteNet(NetBuilder::EdgeId* forward, NetBuilder::EdgeId* wire) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 1);
  NetBuilder::NodeId z = b.AddSite("z", 2);
  NetBuilder::NodeId r1 = b.AddRouter("r1");
  NetBuilder::NodeId r2 = b.AddRouter("r2");
  b.AddLink(a, r1, NetBuilder::LinkSpec{}, "a_up");
  NetBuilder::EdgeId fwd = b.AddLink(r1, r2, NetBuilder::LinkSpec{}, "core");
  NetBuilder::EdgeId w = b.AddWire(r2, z);
  b.AddLink(z, r2, NetBuilder::LinkSpec{}, "z_up");
  b.AddWire(r1, a);
  if (forward != nullptr) {
    *forward = fwd;
  }
  if (wire != nullptr) {
    *wire = w;
  }
  return b;
}

TEST(NetBuilderEventTest, BuildsAndDrivesScheduledLink) {
  NetBuilder::EdgeId fwd = -1;
  NetBuilder b = TwoSiteNet(&fwd, nullptr);
  NetBuilder::ScheduleId flap = b.AddLinkEvent(fwd, At(1.0), Rate::Zero());
  NetBuilder::ScheduleId restore =
      b.AddLinkEvent(fwd, At(2.0), Rate::Mbps(50), TimeDelta::Millis(9));
  EXPECT_EQ(b.num_link_schedules(), 2u);

  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  sim.RunUntil(At(1.5));
  EXPECT_TRUE(net->link(fwd)->parked());
  EXPECT_EQ(net->link_schedule(flap)->fired(), 1u);
  EXPECT_EQ(net->link_schedule(restore)->fired(), 0u);
  sim.RunUntil(At(2.5));
  EXPECT_EQ(net->link(fwd)->rate(), Rate::Mbps(50));
  EXPECT_EQ(net->link(fwd)->prop_delay(), TimeDelta::Millis(9));
  EXPECT_TRUE(net->link_schedule(restore)->done());
}

TEST(NetBuilderEventDeathTest, RejectsUnknownEdge) {
  NetBuilder b = TwoSiteNet(nullptr, nullptr);
  EXPECT_DEATH(b.AddLinkEvent(99, At(1.0), Rate::Mbps(1)), "only .* edges are declared");
}

TEST(NetBuilderEventDeathTest, RejectsWireEdge) {
  NetBuilder::EdgeId wire = -1;
  NetBuilder b = TwoSiteNet(nullptr, &wire);
  EXPECT_DEATH(b.AddLinkEvent(wire, At(1.0), Rate::Mbps(1)), "not a plain link");
}

TEST(NetBuilderEventDeathTest, RejectsOutOfOrderTimestamps) {
  NetBuilder::EdgeId fwd = -1;
  NetBuilder b = TwoSiteNet(&fwd, nullptr);
  std::vector<LinkEventSpec> events;
  events.push_back({At(2.0), Rate::Mbps(1), false, TimeDelta::Zero()});
  events.push_back({At(1.0), Rate::Mbps(2), false, TimeDelta::Zero()});
  EXPECT_DEATH(b.AddLinkSchedule(fwd, events), "strictly increasing");
}

TEST(NetBuilderEventDeathTest, RejectsEmptyScheduleAndShortRepeat) {
  NetBuilder::EdgeId fwd = -1;
  NetBuilder b = TwoSiteNet(&fwd, nullptr);
  EXPECT_DEATH(b.AddLinkSchedule(fwd, {}), "no events");
  std::vector<LinkEventSpec> events;
  events.push_back({At(1.0), Rate::Mbps(1), false, TimeDelta::Zero()});
  EXPECT_DEATH(b.AddLinkSchedule(fwd, events, TimeDelta::Millis(500)),
               "does not clear the last event");
}

}  // namespace
}  // namespace bundler
