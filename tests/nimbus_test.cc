// Tests for Nimbus elasticity detection (§5.1): pulse shape and area
// neutrality, FFT plumbing, and end-to-end detection of elastic vs. inelastic
// synthetic cross traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/bundler/nimbus_detector.h"
#include "src/util/fft.h"

namespace bundler {
namespace {

TEST(FftTest, RecoversSingleTone) {
  const size_t n = 256;
  std::vector<double> signal(n);
  const double sample_rate = 100.0;  // Hz
  const size_t bin = 10;             // tone at 10 * 100/256 Hz
  for (size_t i = 0; i < n; ++i) {
    signal[i] = std::sin(2 * M_PI * bin * i / n);
  }
  auto mags = RealFftMagnitudes(signal);
  ASSERT_EQ(mags.size(), n / 2);
  size_t peak = 1;
  for (size_t k = 2; k < mags.size(); ++k) {
    if (mags[k] > mags[peak]) {
      peak = k;
    }
  }
  EXPECT_EQ(peak, bin);
  (void)sample_rate;
}

TEST(FftTest, DcComponentInBinZero) {
  std::vector<double> signal(64, 5.0);
  auto mags = RealFftMagnitudes(signal);
  EXPECT_GT(mags[0], 100.0);
  for (size_t k = 1; k < mags.size(); ++k) {
    EXPECT_NEAR(mags[k], 0.0, 1e-9);
  }
}

TEST(FftTest, LinearityOfMagnitudes) {
  const size_t n = 128;
  std::vector<double> signal(n);
  for (size_t i = 0; i < n; ++i) {
    signal[i] = std::sin(2 * M_PI * 7 * i / n);
  }
  auto mags1 = RealFftMagnitudes(signal);
  for (auto& v : signal) {
    v *= 3.0;
  }
  auto mags3 = RealFftMagnitudes(signal);
  EXPECT_NEAR(mags3[7], 3 * mags1[7], 1e-6 * mags1[7] + 1e-9);
}

TEST(NimbusPulseTest, UpPulseThenCompensation) {
  NimbusDetector det;
  const Rate mu = Rate::Mbps(96);
  const TimeDelta period = det.pulse_period();
  // First quarter: positive half-sine peaking at mu/4.
  Rate peak = det.PulseRate(TimePoint::Zero() + period * 0.125, mu);
  EXPECT_NEAR(peak.Mbps(), 96.0 / 4, 0.5);
  // Remaining three quarters: negative, peaking at -mu/12.
  Rate trough = det.PulseRate(TimePoint::Zero() + period * 0.625, mu);
  EXPECT_NEAR(trough.Mbps(), -96.0 / 12, 0.5);
}

TEST(NimbusPulseTest, ZeroNetAreaOverOnePeriod) {
  // The asymmetric sinusoid must integrate to ~zero so pulsing does not bias
  // the average rate (§5.1).
  NimbusDetector det;
  const Rate mu = Rate::Mbps(96);
  const TimeDelta period = det.pulse_period();
  const int kSteps = 20000;
  double sum_bps = 0;
  for (int i = 0; i < kSteps; ++i) {
    TimePoint t = TimePoint::Zero() + period * (static_cast<double>(i) / kSteps);
    sum_bps += det.PulseRate(t, mu).bps();
  }
  double mean_mbps = sum_bps / kSteps / 1e6;
  EXPECT_NEAR(mean_mbps, 0.0, 0.3);  // << mu/4 = 24
}

TEST(NimbusPulseTest, PeriodicAcrossPeriods) {
  NimbusDetector det;
  const Rate mu = Rate::Mbps(48);
  const TimeDelta period = det.pulse_period();
  TimePoint a = TimePoint::Zero() + period * 0.3;
  TimePoint b = a + period;
  EXPECT_NEAR(det.PulseRate(a, mu).bps(), det.PulseRate(b, mu).bps(), 1.0);
}

// Synthetic bottleneck driver with a physical queue model. Our rate is
// base + pulse. Elastic cross traffic greedily fills the capacity we leave
// free, reacting over an RTT-scale lag (like AIMD senders tracking their
// share), which is exactly the coherent response Nimbus detects. Inelastic
// cross traffic is a constant-rate paced stream. rout is our proportional
// share of the drain while the queue is busy.
void DriveDetector(NimbusDetector& det, bool elastic_cross, double mu_mbps,
                   double cross_mbps, TimeDelta how_long) {
  const TimeDelta tick = TimeDelta::Millis(10);
  const double mu = mu_mbps * 1e6;
  const double kLagSecs = 0.1;  // elastic reaction time constant (~2 RTTs)
  TimePoint now;
  double our_base = mu * 0.5;
  double cross = elastic_cross ? mu - our_base : cross_mbps * 1e6;
  double queue_bits = elastic_cross ? 0.02 * mu : 0.0;  // standing queue
  const double max_queue_bits = 0.1 * mu;               // ~100 ms of buffer
  for (TimePoint end = now + how_long; now < end; now += tick) {
    double pulse = det.PulseRate(now, Rate::BitsPerSec(mu)).bps();
    double rin = std::max(1e6, our_base + pulse);
    if (elastic_cross) {
      // First-order tracking of the leftover capacity: buffer-filling flows
      // take roughly an RTT to claim freed bandwidth or back off.
      double target = std::max(0.0, mu - rin) + 0.02 * mu;  // keeps queue alive
      cross += (target - cross) * (tick.ToSeconds() / kLagSecs);
    }
    double total = rin + cross;
    queue_bits += (total - mu) * tick.ToSeconds();
    queue_bits = std::clamp(queue_bits, 0.0, max_queue_bits);
    bool busy = queue_bits > 0.0 || total >= mu;
    double rout = busy ? rin * (mu / total) : rin;
    TimeDelta qdelay = TimeDelta::SecondsF(queue_bits / mu);
    det.AddSample(now, Rate::BitsPerSec(rin), Rate::BitsPerSec(rout), qdelay,
                  TimeDelta::Millis(5));
  }
}

TEST(NimbusDetectorTest, DetectsElasticCrossTraffic) {
  NimbusDetector det;
  DriveDetector(det, /*elastic_cross=*/true, 96, 0, TimeDelta::Seconds(15));
  EXPECT_TRUE(det.IsElastic());
  EXPECT_GT(det.elasticity_metric(), 1.0);
}

TEST(NimbusDetectorTest, NoFalsePositiveWithoutCrossTraffic) {
  NimbusDetector det;
  DriveDetector(det, /*elastic_cross=*/false, 96, 0, TimeDelta::Seconds(15));
  EXPECT_FALSE(det.IsElastic());
}

TEST(NimbusDetectorTest, NoFalsePositiveWithInelasticCross) {
  NimbusDetector det;
  // A 30 Mbit/s paced stream (e.g. video) shares the link but does not react.
  DriveDetector(det, /*elastic_cross=*/false, 96, 30, TimeDelta::Seconds(15));
  EXPECT_FALSE(det.IsElastic());
}

TEST(NimbusDetectorTest, MuTracksObservedReceiveRate) {
  NimbusDetector det;
  DriveDetector(det, false, 96, 0, TimeDelta::Seconds(5));
  // We sent ~half of mu, so the mu estimate reflects peak observed rout.
  EXPECT_GT(det.mu_estimate().Mbps(), 40.0);
  EXPECT_LT(det.mu_estimate().Mbps(), 110.0);
}

TEST(NimbusDetectorTest, RecoversAfterCrossTrafficLeaves) {
  NimbusDetector det;
  DriveDetector(det, true, 96, 0, TimeDelta::Seconds(15));
  ASSERT_TRUE(det.IsElastic());
  // Cross traffic departs; detector must flip back within the FFT window.
  NimbusDetector det2 = det;  // continue from the same config
  DriveDetector(det, false, 96, 0, TimeDelta::Seconds(15));
  EXPECT_FALSE(det.IsElastic());
  (void)det2;
}

TEST(NimbusDetectorTest, ResetClearsVerdict) {
  NimbusDetector det;
  DriveDetector(det, true, 96, 0, TimeDelta::Seconds(15));
  ASSERT_TRUE(det.IsElastic());
  det.Reset();
  EXPECT_FALSE(det.IsElastic());
  EXPECT_DOUBLE_EQ(det.elasticity_metric(), 0.0);
}

// The detection must hold across bottleneck capacities.
class NimbusCapacitySweep : public ::testing::TestWithParam<double> {};

TEST_P(NimbusCapacitySweep, ElasticDetectedAtEveryCapacity) {
  NimbusDetector det;
  DriveDetector(det, true, GetParam(), 0, TimeDelta::Seconds(15));
  EXPECT_TRUE(det.IsElastic()) << GetParam() << " Mbps";
}

TEST_P(NimbusCapacitySweep, QuietPathNotElasticAtEveryCapacity) {
  NimbusDetector det;
  DriveDetector(det, false, GetParam(), 0, TimeDelta::Seconds(15));
  EXPECT_FALSE(det.IsElastic()) << GetParam() << " Mbps";
}

INSTANTIATE_TEST_SUITE_P(Capacities, NimbusCapacitySweep,
                         ::testing::Values(24.0, 48.0, 96.0, 192.0));

}  // namespace
}  // namespace bundler
