// Failure injection for the Bundler control loop: the paper's design claims
// robustness to lost feedback and lost epoch-size updates, and that a failed
// Bundler leaves connections unaffected (§4.5, §6). These tests break the
// out-of-band channel in targeted ways and assert the data plane keeps
// delivering.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/app/workload.h"
#include "src/topo/dumbbell.h"

namespace bundler {
namespace {

TimePoint Sec(double s) { return TimePoint::Zero() + TimeDelta::SecondsF(s); }

// Sits between the receivebox and the reverse path; drops selected control
// packets and forwards the rest unchanged (same latency as before).
class ControlDropper : public PacketHandler {
 public:
  ControlDropper(PacketHandler* next, std::function<bool(const Packet&)> drop)
      : next_(next), drop_(std::move(drop)) {}

  void HandlePacket(Packet pkt) override {
    if (drop_ && drop_(pkt)) {
      ++dropped_;
      return;
    }
    next_->HandlePacket(std::move(pkt));
  }

  uint64_t dropped() const { return dropped_; }

 private:
  PacketHandler* next_;
  std::function<bool(const Packet&)> drop_;
  uint64_t dropped_ = 0;
};

struct FaultyRun {
  uint64_t control_dropped = 0;
  int64_t delivered_bytes = 0;
  int64_t sendbox_queue_bytes = 0;
  uint64_t feedback_matched = 0;
};

FaultyRun RunWithControlFault(std::function<bool(const Packet&)> drop, double seconds) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  Dumbbell net(&sim, cfg);

  ControlDropper dropper(net.reverse_path(), std::move(drop));
  net.receivebox()->set_reverse(&dropper);

  auto senders = StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4,
                                HostCcType::kCubic, TimePoint::Zero());
  sim.RunUntil(Sec(seconds));

  FaultyRun r;
  r.control_dropped = dropper.dropped();
  for (auto* s : senders) {
    r.delivered_bytes += s->delivered_bytes();
  }
  r.sendbox_queue_bytes = net.sendbox()->queue_bytes();
  r.feedback_matched = net.sendbox()->measurement().feedback_matched();
  return r;
}

TEST(FailureInjectionTest, TotalFeedbackLossDoesNotStallData) {
  // Black-hole every congestion ACK: the sendbox never learns anything and
  // keeps shaping blind, but end-to-end connections must keep making
  // progress (the bundle is never required for correctness).
  FaultyRun r = RunWithControlFault(
      [](const Packet& p) { return p.type == PacketType::kBundlerFeedback; }, 20);
  EXPECT_GT(r.control_dropped, 100u);
  EXPECT_EQ(r.feedback_matched, 0u);
  EXPECT_GT(r.delivered_bytes, static_cast<int64_t>(20 * 6e6 / 8));
}

TEST(FailureInjectionTest, HalfFeedbackLossStillConverges) {
  uint64_t n = 0;
  FaultyRun r = RunWithControlFault(
      [&](const Packet& p) {
        return p.type == PacketType::kBundlerFeedback && (++n % 2 == 0);
      },
      20);
  EXPECT_GT(r.control_dropped, 50u);
  // With every other congestion ACK lost, epochs simply span two periods;
  // the loop still converges to a usable rate.
  EXPECT_GT(r.delivered_bytes, static_cast<int64_t>(0.6 * 20 * 48e6 / 8));
}

TEST(FailureInjectionTest, BundleSurvivesBurstyControlOutages) {
  // The control channel goes dark for one window out of every three.
  uint64_t n = 0;
  FaultyRun r = RunWithControlFault(
      [&](const Packet& p) {
        if (p.type != PacketType::kBundlerFeedback) {
          return false;
        }
        ++n;
        return (n / 200) % 3 == 2;
      },
      20);
  EXPECT_GT(r.control_dropped, 100u);
  EXPECT_GT(r.delivered_bytes, static_cast<int64_t>(0.5 * 20 * 48e6 / 8));
}

TEST(FailureInjectionTest, SendboxQueueBoundedUnderTotalFeedbackLoss) {
  // Even with all feedback lost the sendbox queue must stay within its
  // configured limit: the qdisc drops, the endhosts back off.
  FaultyRun r = RunWithControlFault(
      [](const Packet& p) { return p.type == PacketType::kBundlerFeedback; }, 20);
  DumbbellConfig defaults;
  EXPECT_LT(r.sendbox_queue_bytes,
            static_cast<int64_t>(defaults.sendbox.queue_limit_pkts + 1) * kMtuBytes);
}

TEST(FailureInjectionTest, FeedbackReorderingToleratedOnSinglePath) {
  // Shuffle adjacent feedback messages (emulating reverse-path jitter): the
  // measurement engine must keep matching and the multipath detector must
  // not disable the bundler (the send-gap significance guard filters these
  // micro-inversions).
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  Dumbbell net(&sim, cfg);

  // Hold back every 5th feedback packet by one neighbor: swap via a one-slot
  // buffer.
  std::unique_ptr<Packet> held;
  uint64_t n = 0;
  LambdaHandler shuffler([&](Packet p) {
    if (p.type == PacketType::kBundlerFeedback) {
      ++n;
      if (n % 5 == 0 && held == nullptr) {
        held = std::make_unique<Packet>(std::move(p));
        return;
      }
      net.reverse_path()->HandlePacket(std::move(p));
      if (held != nullptr) {
        net.reverse_path()->HandlePacket(std::move(*held));
        held.reset();
      }
      return;
    }
    net.reverse_path()->HandlePacket(std::move(p));
  });
  net.receivebox()->set_reverse(&shuffler);

  auto senders = StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4,
                                HostCcType::kCubic, TimePoint::Zero());
  sim.RunUntil(Sec(20));
  EXPECT_EQ(net.sendbox()->mode(), BundlerMode::kDelayControl);
  int64_t total = 0;
  for (auto* s : senders) {
    total += s->delivered_bytes();
  }
  EXPECT_GT(total, static_cast<int64_t>(0.6 * 20 * 48e6 / 8));
}

TEST(FailureInjectionTest, MeasurementSurvivesEpochDisagreement) {
  // Freeze the receivebox's epoch size at its initial value (as if every
  // epoch-size update were lost). Power-of-two nesting (§4.5) keeps one
  // side's boundaries a subset of the other's, so measurement continues.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  Dumbbell net(&sim, cfg);
  ControlDropper dropper(net.reverse_path(), nullptr);
  net.receivebox()->set_reverse(&dropper);
  net.receivebox()->FreezeEpochSizeForTest();

  auto senders = StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4,
                                HostCcType::kCubic, TimePoint::Zero());
  sim.RunUntil(Sec(20));
  EXPECT_GT(net.sendbox()->measurement().feedback_matched(), 200u);
  int64_t total = 0;
  for (auto* s : senders) {
    total += s->delivered_bytes();
  }
  EXPECT_GT(total, static_cast<int64_t>(0.6 * 20 * 48e6 / 8));
}

}  // namespace
}  // namespace bundler
