// FaultInjector (src/net/fault_injector.h): every stochastic mechanism is
// mirrored against a reference model driving an identically-seeded Rng in the
// injector's documented draw order (Bernoulli: one draw per targeted packet;
// Gilbert-Elliott: loss draw then transition draw; reorder: one hold draw per
// surviving targeted packet while the slot is free), so the tests pin the
// exact RNG contract that makes faulted runs reproducible. Plus: blackout
// window edge semantics, bounded reorder displacement, passive construction,
// profile-validation death tests, and the end-to-end guarantee that a faulted
// topology produces identical results unsharded and sharded at any worker
// count.
#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "src/net/fault_injector.h"
#include "src/net/node.h"
#include "src/net/packet.h"
#include "src/sim/shard_channel.h"
#include "src/sim/shard_runner.h"
#include "src/sim/simulator.h"
#include "src/topo/dumbbell.h"
#include "src/topo/net_builder.h"
#include "src/topo/partition.h"
#include "src/transport/tcp_flow.h"
#include "src/util/random.h"

namespace bundler {
namespace {

TimePoint At(double s) { return TimePoint::Zero() + TimeDelta::SecondsF(s); }

Packet DataPacket(int64_t seq) {
  FlowKey key;
  key.src = MakeAddress(1, 1);
  key.dst = MakeAddress(2, 1);
  key.protocol = 6;
  return MakeDataPacket(/*flow_id=*/7, key, seq, /*size_bytes=*/1000);
}

Packet CtlPacket(PacketType type, int64_t seq) {
  Packet pkt;
  pkt.type = type;
  pkt.seq = seq;
  pkt.size_bytes = 64;
  return pkt;
}

// Injector into a recording sink. Arrival order and identity (type, seq) are
// what the assertions compare.
struct Harness {
  explicit Harness(const FaultProfileSpec& spec)
      : sink([this](Packet p) { arrivals.emplace_back(p.type, p.seq); }),
        inj(&sim, "t", spec, &sink) {}

  Simulator sim;
  std::vector<std::pair<PacketType, int64_t>> arrivals;
  LambdaHandler sink;
  FaultInjector inj;
};

TEST(FaultInjectorTest, BernoulliLossMatchesReferenceModel) {
  FaultProfileSpec spec;
  spec.loss_prob = 0.3;
  spec.seed = 42;
  Harness h(spec);

  Rng ref(42);
  std::vector<int64_t> expected;
  for (int64_t i = 0; i < 500; ++i) {
    h.inj.HandlePacket(DataPacket(i));
    if (!(ref.NextDouble() < 0.3)) {
      expected.push_back(i);
    }
  }
  ASSERT_EQ(h.arrivals.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(h.arrivals[i].second, expected[i]);
  }
  EXPECT_EQ(h.inj.stats().passed, expected.size());
  EXPECT_EQ(h.inj.stats().drops_random, 500 - expected.size());
  EXPECT_EQ(h.inj.stats().drops_burst, 0u);
}

TEST(FaultInjectorTest, GilbertElliottMatchesReferenceModel) {
  FaultProfileSpec spec;
  spec.ge_p_good_to_bad = 0.05;
  spec.ge_p_bad_to_good = 0.3;
  spec.ge_loss_good = 0.01;
  spec.ge_loss_bad = 0.9;
  spec.seed = 7;
  Harness h(spec);

  // Reference chain: loss draw against the *current* state's probability,
  // then one transition draw — the order the injector documents.
  Rng ref(7);
  bool bad = false;
  std::vector<int64_t> expected;
  uint64_t losses = 0;
  for (int64_t i = 0; i < 2000; ++i) {
    h.inj.HandlePacket(DataPacket(i));
    const bool lost = ref.NextDouble() < (bad ? 0.9 : 0.01);
    if (ref.NextDouble() < (bad ? 0.3 : 0.05)) {
      bad = !bad;
    }
    if (lost) {
      ++losses;
    } else {
      expected.push_back(i);
    }
  }
  ASSERT_GT(losses, 0u);  // the chain must actually visit the bad state
  ASSERT_EQ(h.arrivals.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(h.arrivals[i].second, expected[i]);
  }
  EXPECT_EQ(h.inj.stats().drops_burst, losses);
  EXPECT_EQ(h.inj.stats().drops_random, 0u);
}

// Ctl targeting: data packets neither consume RNG draws nor count in stats,
// so the fault sequence seen by control messages is independent of how much
// data traffic shares the link.
TEST(FaultInjectorTest, CtlTargetingConsumesNoDrawsForData) {
  FaultProfileSpec spec;
  spec.target = FaultTarget::kCtl;
  spec.loss_prob = 0.5;
  spec.seed = 11;
  Harness h(spec);

  Rng ref(11);
  std::vector<std::pair<PacketType, int64_t>> expected;
  for (int64_t i = 0; i < 300; ++i) {
    // Interleave: data, feedback, data, epoch ctl, ...
    h.inj.HandlePacket(DataPacket(i));
    expected.emplace_back(PacketType::kData, i);
    const PacketType ctl =
        i % 2 == 0 ? PacketType::kBundlerFeedback : PacketType::kBundlerEpochCtl;
    h.inj.HandlePacket(CtlPacket(ctl, i));
    if (!(ref.NextDouble() < 0.5)) {
      expected.emplace_back(ctl, i);
    }
  }
  EXPECT_EQ(h.arrivals, expected);
  // Untargeted data is not even counted as "passed": the stats describe the
  // targeted population only.
  EXPECT_EQ(h.inj.stats().passed + h.inj.stats().drops_random, 300u);
}

TEST(FaultInjectorTest, FeedbackOnlyTargetSparesEpochCtl) {
  FaultProfileSpec spec;
  spec.target = FaultTarget::kFeedbackOnly;
  spec.loss_prob = 1.0;
  Harness h(spec);

  h.inj.HandlePacket(CtlPacket(PacketType::kBundlerFeedback, 0));
  h.inj.HandlePacket(CtlPacket(PacketType::kBundlerEpochCtl, 1));
  h.inj.HandlePacket(DataPacket(2));
  ASSERT_EQ(h.arrivals.size(), 2u);
  EXPECT_EQ(h.arrivals[0].first, PacketType::kBundlerEpochCtl);
  EXPECT_EQ(h.arrivals[1].first, PacketType::kData);
  EXPECT_EQ(h.inj.stats().drops_random, 1u);
}

TEST(FaultInjectorTest, BlackoutWindowsDropExactlyInside) {
  FaultProfileSpec spec;
  spec.blackouts = {{TimeDelta::Millis(10), TimeDelta::Millis(20)},
                    {TimeDelta::Millis(30), TimeDelta::Millis(40)}};
  Harness h(spec);

  // Start inclusive, end exclusive: 10 and 15 drop, 20 passes; the cursor
  // then advances to the second window.
  const double send_ms[] = {5, 10, 15, 20, 25, 30, 39, 40, 45};
  for (size_t i = 0; i < std::size(send_ms); ++i) {
    h.sim.ScheduleAt(At(send_ms[i] / 1000.0), [&h, i]() {
      h.inj.HandlePacket(DataPacket(static_cast<int64_t>(i)));
    });
  }
  h.sim.RunAll();
  std::vector<int64_t> got;
  for (const auto& [type, seq] : h.arrivals) {
    got.push_back(seq);
  }
  EXPECT_EQ(got, (std::vector<int64_t>{0, 3, 4, 7, 8}));
  EXPECT_EQ(h.inj.stats().drops_blackout, 4u);
  EXPECT_EQ(h.inj.stats().passed, 5u);
}

TEST(FaultInjectorTest, ReorderDisplacementBoundedByDepth) {
  FaultProfileSpec spec;
  spec.reorder_prob = 1.0;  // every eligible packet is held
  spec.reorder_depth = 3;
  Harness h(spec);

  for (int64_t i = 0; i < 8; ++i) {
    h.inj.HandlePacket(DataPacket(i));
  }
  // Packet 0 is held; 1..3 overtake it (displacement == depth), which
  // releases it. Packet 4 is then held and 5..7 repeat the pattern.
  std::vector<int64_t> got;
  for (const auto& [type, seq] : h.arrivals) {
    got.push_back(seq);
  }
  EXPECT_EQ(got, (std::vector<int64_t>{1, 2, 3, 0, 5, 6, 7, 4}));
  EXPECT_EQ(h.inj.stats().held, 2u);
  EXPECT_EQ(h.inj.stats().released_depth, 2u);
  EXPECT_EQ(h.inj.stats().released_flush, 0u);
  EXPECT_FALSE(h.inj.holding());
}

TEST(FaultInjectorTest, ReorderFlushReleasesWhenTrafficStops) {
  FaultProfileSpec spec;
  spec.reorder_prob = 1.0;
  spec.reorder_depth = 8;
  spec.reorder_flush = TimeDelta::Millis(25);
  Harness h(spec);

  h.inj.HandlePacket(DataPacket(0));
  EXPECT_TRUE(h.inj.holding());
  EXPECT_TRUE(h.arrivals.empty());
  h.sim.RunAll();  // only the flush timer is pending
  ASSERT_EQ(h.arrivals.size(), 1u);
  EXPECT_EQ(h.arrivals[0].second, 0);
  EXPECT_EQ(h.sim.now(), At(0.025));
  EXPECT_EQ(h.inj.stats().released_flush, 1u);
  EXPECT_FALSE(h.inj.holding());
}

// Construction schedules nothing: declaring fault profiles must not perturb
// event-queue seeding of an otherwise identical run.
TEST(FaultInjectorTest, ConstructionIsPassive) {
  FaultProfileSpec spec;
  spec.loss_prob = 0.5;
  spec.reorder_prob = 0.5;
  spec.reorder_depth = 4;
  spec.blackouts = {{TimeDelta::Millis(1), TimeDelta::Millis(2)}};
  Harness h(spec);
  h.sim.RunAll();
  EXPECT_EQ(h.sim.events_dispatched(), 0u);
}

TEST(FaultProfileDeathTest, InvalidProfilesDie) {
  FaultProfileSpec spec;
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "no mechanism");

  spec.loss_prob = 1.5;
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "loss_prob");

  spec.loss_prob = 0.5;
  spec.ge_p_good_to_bad = 0.5;
  spec.ge_p_bad_to_good = 0.5;
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "mutually");

  spec.loss_prob = 0.0;
  spec.ge_p_bad_to_good = 0.0;
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "transition");

  spec.ge_p_good_to_bad = 0.0;
  spec.blackouts = {{TimeDelta::Millis(5), TimeDelta::Millis(5)}};
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "start < end");

  spec.blackouts = {{TimeDelta::Millis(5), TimeDelta::Millis(10)},
                    {TimeDelta::Millis(8), TimeDelta::Millis(12)}};
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "non-overlapping");

  spec.blackouts.clear();
  spec.reorder_prob = 0.5;
  spec.reorder_depth = 99;
  EXPECT_DEATH(ValidateFaultProfile(spec, "t"), "reorder_depth");
}

// --- Sharded determinism -------------------------------------------------
//
// A faulted topology must produce identical results unsharded and sharded at
// any worker count: the injector sits on a link's delivery chain, whose
// arrival order is the repo-wide determinism contract. Uses the non-bundled
// dumbbell (partitions into sender/receiver shards across the faulted
// bottleneck) with burst loss + reordering active.

struct ShardOutput {
  std::vector<double> fct_ms;
  FaultInjector::Stats stats;
};

FaultProfileSpec CrossShardProfile() {
  FaultProfileSpec spec;
  spec.ge_p_good_to_bad = 0.02;
  spec.ge_p_bad_to_good = 0.25;
  spec.ge_loss_good = 0.0;
  spec.ge_loss_bad = 1.0;
  spec.reorder_prob = 0.05;
  spec.reorder_depth = 4;
  spec.seed = 99;
  return spec;
}

void ShardWorkload(Net* net, const DumbbellGraph& g, ShardOutput* out) {
  Host* src = net->host(g.servers[0]);
  Host* dst = net->host(g.clients[0]);
  for (int i = 0; i < 16; ++i) {
    TcpFlowParams params;
    params.size_bytes = (16 + (i % 5) * 24) * 1024;
    params.request_start = At(0.003 + 0.007 * i);
    TcpSender* sender = CreateTcpFlow(
        net->flows(), src, dst, params,
        [out, start = params.request_start](TimePoint end) {
          out->fct_ms.push_back((end - start).ToMillis());
        });
    src->sim()->ScheduleAt(params.request_start, [sender]() { sender->Start(); });
  }
}

DumbbellConfig ShardDumbbellConfig() {
  DumbbellConfig cfg;
  cfg.bundler_enabled = false;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(20);
  return cfg;
}

ShardOutput RunFaultedUnsharded() {
  ShardOutput out;
  DumbbellGraph g;
  NetBuilder b = DumbbellBuilder(ShardDumbbellConfig(), &g);
  NetBuilder::FaultId fid = b.AddFaultProfile(g.bottleneck, CrossShardProfile());
  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  ShardWorkload(net.get(), g, &out);
  sim.RunUntil(At(4.0));
  out.stats = net->fault_injector(fid)->stats();
  return out;
}

ShardOutput RunFaultedSharded(int workers) {
  ShardOutput out;
  DumbbellGraph g;
  NetBuilder b = DumbbellBuilder(ShardDumbbellConfig(), &g);
  NetBuilder::FaultId fid = b.AddFaultProfile(g.bottleneck, CrossShardProfile());
  const PartitionPlan plan = PartitionTopology(b);
  EXPECT_EQ(plan.num_groups, 2);

  std::vector<std::unique_ptr<Simulator>> sim_store;
  std::vector<Simulator*> sims;
  for (int i = 0; i < plan.num_groups; ++i) {
    sim_store.push_back(std::make_unique<Simulator>());
    sims.push_back(sim_store.back().get());
  }
  ShardChannelSet channels;
  std::unique_ptr<Net> net = b.Build(plan, sims, &channels);
  ShardWorkload(net.get(), g, &out);
  ShardRunner::Options opt;
  opt.workers = workers;
  ShardRunner sr(sims, &channels, opt);
  sr.RunUntil(At(4.0));
  out.stats = net->fault_injector(fid)->stats();
  return out;
}

void ExpectSameOutput(const ShardOutput& a, const ShardOutput& b) {
  EXPECT_EQ(a.fct_ms, b.fct_ms);
  EXPECT_EQ(a.stats.passed, b.stats.passed);
  EXPECT_EQ(a.stats.drops_burst, b.stats.drops_burst);
  EXPECT_EQ(a.stats.drops_random, b.stats.drops_random);
  EXPECT_EQ(a.stats.held, b.stats.held);
  EXPECT_EQ(a.stats.released_depth, b.stats.released_depth);
  EXPECT_EQ(a.stats.released_flush, b.stats.released_flush);
}

TEST(FaultInjectorShardTest, FaultedRunIdenticalAcrossShardWorkers) {
  ShardOutput unsharded = RunFaultedUnsharded();
  ASSERT_GT(unsharded.fct_ms.size(), 0u);
  ASSERT_GT(unsharded.stats.drops_burst, 0u);  // the fault actually fired
  ASSERT_GT(unsharded.stats.held, 0u);
  ShardOutput w1 = RunFaultedSharded(1);
  ShardOutput w2 = RunFaultedSharded(2);
  ExpectSameOutput(unsharded, w1);
  ExpectSameOutput(unsharded, w2);
}

}  // namespace
}  // namespace bundler
