// End-to-end integration tests reproducing the paper's headline behaviors at
// test scale: FCT improvement from sendbox SFQ (§7.2), pass-through under
// buffer-filling cross traffic with recovery (§5.1, Fig. 10), multipath
// detection and disable (§5.2, §7.6), and competing bundles (Fig. 13).
#include <gtest/gtest.h>

#include <utility>

#include "src/app/workload.h"
#include "src/topo/dumbbell.h"
#include "src/topo/scenario.h"

namespace bundler {
namespace {

TimePoint Sec(double s) { return TimePoint::Zero() + TimeDelta::SecondsF(s); }

// Shared, reduced-scale version of the §7.1 scenario so tests stay fast:
// 24 Mbit/s bottleneck, 20 Mbit/s web load, 20 s.
ExperimentConfig BaseScenario(bool bundler_on) {
  ExperimentConfig cfg;
  cfg.net.bottleneck_rate = Rate::Mbps(24);
  cfg.net.rtt = TimeDelta::Millis(50);
  cfg.net.bundler_enabled = bundler_on;
  cfg.duration = TimeDelta::Seconds(20);
  cfg.warmup = TimeDelta::Seconds(4);
  cfg.bundle_web_load = {Rate::Mbps(20)};
  cfg.seed = 5;
  return cfg;
}

double MedianSlowdown(Experiment& e, IdealFctCache& ideal) {
  return e.fct()->Slowdowns(ideal.Fn(), e.MeasuredRequests()).Median();
}

TEST(IntegrationTest, BundlerSfqBeatsStatusQuoMedianSlowdown) {
  IdealFctCache ideal(Rate::Mbps(24), TimeDelta::Millis(50), HostCcType::kCubic);

  Experiment status_quo(BaseScenario(false));
  status_quo.Run();
  double sq = MedianSlowdown(status_quo, ideal);

  Experiment with_bundler(BaseScenario(true));
  with_bundler.Run();
  double bd = MedianSlowdown(with_bundler, ideal);

  // §7.2: Bundler+SFQ improves the median; at test scale we only require a
  // directional win with margin.
  EXPECT_LT(bd, sq * 0.95) << "status quo " << sq << " vs bundler " << bd;
  // Sanity: both ran a real workload.
  EXPECT_GT(status_quo.fct()->completed(), 500u);
  EXPECT_GT(with_bundler.fct()->completed(), 500u);
}

TEST(IntegrationTest, InNetworkFqIsTheUpperBound) {
  IdealFctCache ideal(Rate::Mbps(24), TimeDelta::Millis(50), HostCcType::kCubic);
  ExperimentConfig cfg = BaseScenario(false);
  cfg.net.in_network_fq = true;
  Experiment in_network(cfg);
  in_network.Run();
  double innet = MedianSlowdown(in_network, ideal);

  Experiment with_bundler(BaseScenario(true));
  with_bundler.Run();
  double bd = MedianSlowdown(with_bundler, ideal);

  // In-network FQ should be at least as good as Bundler (within noise).
  EXPECT_LT(innet, bd * 1.15);
}

TEST(IntegrationTest, ShortFlowsGainTheMost) {
  IdealFctCache ideal(Rate::Mbps(24), TimeDelta::Millis(50), HostCcType::kCubic);
  Experiment status_quo(BaseScenario(false));
  status_quo.Run();
  Experiment with_bundler(BaseScenario(true));
  with_bundler.Run();

  RequestFilter small = RequestFilter::SmallFlows();
  small.min_start = Sec(4);
  double sq_small = status_quo.fct()->Slowdowns(ideal.Fn(), small).Median();
  double bd_small = with_bundler.fct()->Slowdowns(ideal.Fn(), small).Median();
  EXPECT_LT(bd_small, sq_small);
}

TEST(IntegrationTest, PassThroughUnderElasticCrossTrafficAndRecovery) {
  // Fig. 10's three phases, compressed: quiet, then a backlogged Cubic cross
  // flow, then quiet again.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(50);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 10, HostCcType::kCubic,
                 TimePoint::Zero());

  // Phase 2: one buffer-filling cross flow from t=30 to t=60 (finite but
  // much larger than what 30 s can carry).
  TcpFlowParams cross;
  cross.size_bytes = 1'000'000'000;
  cross.cc = HostCcType::kCubic;
  sim.Schedule(TimeDelta::Seconds(30), [&]() {
    StartTcpFlow(net.flows(), net.cross_server(), net.cross_client(), cross, nullptr);
  });
  // We cannot stop a TCP flow mid-simulation, so phase 3 uses a second
  // dumbbell-free check below; here we verify entry into pass-through.
  sim.RunUntil(Sec(60));
  // Bundler must have detected the elastic competitor and switched modes.
  bool saw_pass_through = false;
  for (const auto& [t, m] : net.sendbox()->mode_log()) {
    if (m == BundlerMode::kPassThrough) {
      saw_pass_through = true;
    }
  }
  EXPECT_TRUE(saw_pass_through);
  EXPECT_EQ(net.sendbox()->mode(), BundlerMode::kPassThrough);

  // Bundle must keep a reasonable share of the link while competing: >= 25%
  // of capacity (fair share would be ~10/11).
  Rate share = net.bundle_rate_meter()->AverageRate(Sec(40), Sec(60));
  EXPECT_GT(share.Mbps(), 0.25 * 48);
}

TEST(IntegrationTest, RecoversDelayControlAfterCrossTrafficLeaves) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(50);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 10, HostCcType::kCubic,
                 TimePoint::Zero());
  // Cross flow sized to finish around t=55 (25 s at ~half of 48 Mbit/s).
  TcpFlowParams cross;
  cross.size_bytes = 70'000'000;
  cross.cc = HostCcType::kCubic;
  sim.Schedule(TimeDelta::Seconds(30), [&]() {
    StartTcpFlow(net.flows(), net.cross_server(), net.cross_client(), cross, nullptr);
  });
  sim.RunUntil(Sec(120));
  // After the cross flow drains, the sendbox must be back in delay control.
  EXPECT_EQ(net.sendbox()->mode(), BundlerMode::kDelayControl);
  bool saw_pass_through = false;
  for (const auto& [t, m] : net.sendbox()->mode_log()) {
    saw_pass_through |= (m == BundlerMode::kPassThrough);
  }
  EXPECT_TRUE(saw_pass_through);
}

TEST(IntegrationTest, ImbalancedMultipathDisablesRateControl) {
  // §5.2 / Fig. 7: four load-balanced paths with very different delays make
  // epoch feedback arrive out of order; Bundler must disable itself.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  cfg.num_paths = 4;
  cfg.path_delay_spread = TimeDelta::Millis(60);  // paths at 20/80/140/200 ms one-way
  Dumbbell net(&sim, cfg);
  // Many flows so ECMP spreads them across paths.
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 24, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(Sec(40));
  // The sendbox periodically re-probes delay control from disabled mode, so
  // assert on the dominant behavior: disabled for the large majority of the
  // steady-state interval.
  const auto& log = net.sendbox()->mode_log();
  TimeDelta disabled_time = TimeDelta::Zero();
  for (size_t i = 0; i < log.size(); ++i) {
    TimePoint start = std::max(log[i].first, Sec(10));
    TimePoint end = i + 1 < log.size() ? log[i + 1].first : Sec(40);
    if (log[i].second == BundlerMode::kDisabled && end > start) {
      disabled_time += end - start;
    }
  }
  EXPECT_GT(disabled_time.ToSeconds(), 0.7 * 30.0);
}

TEST(IntegrationTest, SinglePathNeverTripsMultipathDetector) {
  // §7.6: single-path runs saw at most 0.4% out-of-order measurements; the
  // sendbox must hold delay control for the whole run.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 24, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(Sec(40));
  EXPECT_EQ(net.sendbox()->mode(), BundlerMode::kDelayControl);
  for (const auto& [t, m] : net.sendbox()->mode_log()) {
    EXPECT_NE(m, BundlerMode::kDisabled);
  }
  EXPECT_LT(net.sendbox()->measurement().OutOfOrderFraction(sim.now()), 0.01);
}

TEST(IntegrationTest, EqualDelayMultipathIsStillDetected) {
  // §7.6 found >= 20% out-of-order measurements for EVERY multipath
  // configuration, imbalanced or not: per-flow ECMP jitter alone reorders
  // epoch feedback. Equal-delay paths therefore also land in disabled mode
  // for the majority of the run (the sendbox re-probes periodically).
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  cfg.num_paths = 4;
  cfg.path_delay_spread = TimeDelta::Zero();
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 24, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(Sec(40));
  const auto& log = net.sendbox()->mode_log();
  TimeDelta disabled_time = TimeDelta::Zero();
  for (size_t i = 0; i < log.size(); ++i) {
    TimePoint start = std::max(log[i].first, Sec(10));
    TimePoint end = i + 1 < log.size() ? log[i + 1].first : Sec(40);
    if (log[i].second == BundlerMode::kDisabled && end > start) {
      disabled_time += end - start;
    }
  }
  EXPECT_GT(disabled_time.ToSeconds(), 0.5 * 30.0);
}

TEST(IntegrationTest, CompetingBundlesBothKeepThroughput) {
  // Fig. 13-style: two bundles sharing the bottleneck, 1:1 offered load.
  ExperimentConfig cfg;
  cfg.net.bottleneck_rate = Rate::Mbps(24);
  cfg.net.rtt = TimeDelta::Millis(50);
  cfg.net.num_bundles = 2;
  cfg.duration = TimeDelta::Seconds(25);
  cfg.warmup = TimeDelta::Seconds(5);
  cfg.bundle_web_load = {Rate::Mbps(9), Rate::Mbps(9)};
  cfg.bundle_bulk_flows = 1;
  Experiment e(cfg);
  e.Run();
  Rate b0 = e.net()->bundle_rate_meter(0)->AverageRate(Sec(5), Sec(25));
  Rate b1 = e.net()->bundle_rate_meter(1)->AverageRate(Sec(5), Sec(25));
  // Both bundles get a solid share; neither starves.
  EXPECT_GT(b0.Mbps(), 6.0);
  EXPECT_GT(b1.Mbps(), 6.0);
  double ratio = std::max(b0.Mbps(), b1.Mbps()) / std::min(b0.Mbps(), b1.Mbps());
  EXPECT_LT(ratio, 1.8);
  // Both keep modest in-network queues (delay control held).
  EXPECT_EQ(e.net()->sendbox(0)->mode(), BundlerMode::kDelayControl);
  EXPECT_EQ(e.net()->sendbox(1)->mode(), BundlerMode::kDelayControl);
}

TEST(IntegrationTest, ExperimentWarmupFilterExcludesEarlyRequests) {
  ExperimentConfig cfg = BaseScenario(true);
  cfg.duration = TimeDelta::Seconds(8);
  cfg.warmup = TimeDelta::Seconds(4);
  Experiment e(cfg);
  e.Run();
  RequestFilter f = e.MeasuredRequests();
  EXPECT_EQ(f.min_start, Sec(4));
  auto all = e.fct()->Fcts();
  auto measured = e.fct()->Fcts(f);
  EXPECT_LT(measured.count(), all.count());
}

TEST(IntegrationTest, SeedsChangeWorkloadButNotStructure) {
  ExperimentConfig cfg = BaseScenario(true);
  cfg.duration = TimeDelta::Seconds(6);
  cfg.seed = 1;
  Experiment e1(cfg);
  e1.Run();
  cfg.seed = 2;
  Experiment e2(cfg);
  e2.Run();
  EXPECT_NE(e1.fct()->total(), e2.fct()->total());
  EXPECT_GT(e1.fct()->completed(), 100u);
  EXPECT_GT(e2.fct()->completed(), 100u);
}

}  // namespace
}  // namespace bundler
