// Unit tests for the queue disciplines and the token-bucket shaper.
#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/qdisc/codel.h"
#include "src/qdisc/drr.h"
#include "src/qdisc/fifo.h"
#include "src/qdisc/fq_codel.h"
#include "src/qdisc/prio.h"
#include "src/qdisc/sfq.h"
#include "src/qdisc/token_bucket.h"
#include "src/sim/simulator.h"

namespace bundler {
namespace {

Packet MakePkt(uint16_t src_port, uint32_t size = kMtuBytes, uint64_t flow = 1) {
  FlowKey key;
  key.src = MakeAddress(1, 1);
  key.dst = MakeAddress(2, 1);
  key.src_port = src_port;
  key.dst_port = 80;
  return MakeDataPacket(flow, key, 0, size);
}

TEST(DropTailFifoTest, FifoOrderPreserved) {
  DropTailFifo q(10 * kMtuBytes);
  TimePoint t;
  for (int i = 0; i < 5; ++i) {
    Packet p = MakePkt(100);
    p.seq = i;
    EXPECT_TRUE(q.Enqueue(std::move(p), t));
  }
  EXPECT_EQ(q.packets(), 5);
  for (int i = 0; i < 5; ++i) {
    auto p = q.Dequeue(t);
    ASSERT_TRUE(p.has_value());
    EXPECT_EQ(p->seq, i);
  }
  EXPECT_TRUE(q.Empty());
}

TEST(DropTailFifoTest, DropsWhenFull) {
  DropTailFifo q(3 * kMtuBytes);
  TimePoint t;
  EXPECT_TRUE(q.Enqueue(MakePkt(1), t));
  EXPECT_TRUE(q.Enqueue(MakePkt(2), t));
  EXPECT_TRUE(q.Enqueue(MakePkt(3), t));
  EXPECT_FALSE(q.Enqueue(MakePkt(4), t));
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.packets(), 3);
}

TEST(DropTailFifoTest, ByteAccounting) {
  DropTailFifo q(10'000);
  TimePoint t;
  q.Enqueue(MakePkt(1, 1000), t);
  q.Enqueue(MakePkt(2, 500), t);
  EXPECT_EQ(q.bytes(), 1500);
  q.Dequeue(t);
  EXPECT_EQ(q.bytes(), 500);
}

TEST(SfqTest, RoundRobinsAcrossFlows) {
  Sfq::Config cfg;
  cfg.limit_packets = 1000;
  Sfq q(cfg);
  TimePoint t;
  // Two flows: flow A enqueues 10, flow B enqueues 10. Dequeue order should
  // alternate (one MTU quantum each).
  for (int i = 0; i < 10; ++i) {
    Packet a = MakePkt(1000);
    a.seq = i;
    q.Enqueue(std::move(a), t);
  }
  for (int i = 0; i < 10; ++i) {
    Packet b = MakePkt(2000);
    b.seq = i;
    q.Enqueue(std::move(b), t);
  }
  std::map<uint16_t, int> got;
  for (int i = 0; i < 10; ++i) {
    auto p = q.Dequeue(t);
    ASSERT_TRUE(p.has_value());
    ++got[p->key.src_port];
  }
  // After 10 dequeues, both flows should have sent ~5 each.
  EXPECT_EQ(got[1000], 5);
  EXPECT_EQ(got[2000], 5);
}

TEST(SfqTest, ShortFlowNotStuckBehindLongFlow) {
  Sfq::Config cfg;
  Sfq q(cfg);
  TimePoint t;
  for (int i = 0; i < 100; ++i) {
    q.Enqueue(MakePkt(1000), t);
  }
  q.Enqueue(MakePkt(2000), t);  // one short-flow packet behind 100 bulk ones
  // The short flow's packet must come out within the first round (~2 pkts).
  bool found = false;
  for (int i = 0; i < 3; ++i) {
    auto p = q.Dequeue(t);
    ASSERT_TRUE(p.has_value());
    if (p->key.src_port == 2000) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found);
}

TEST(SfqTest, DropsFromLongestFlowOnOverflow) {
  Sfq::Config cfg;
  cfg.limit_packets = 20;
  Sfq q(cfg);
  TimePoint t;
  for (int i = 0; i < 18; ++i) {
    q.Enqueue(MakePkt(1000), t);
  }
  q.Enqueue(MakePkt(2000), t);
  q.Enqueue(MakePkt(3000), t);
  // Next enqueue overflows; the victim must come from the fat flow (1000).
  q.Enqueue(MakePkt(2000), t);
  EXPECT_EQ(q.drops(), 1u);
  EXPECT_EQ(q.packets(), 20);
  // Count survivors per flow.
  std::map<uint16_t, int> got;
  while (auto p = q.Dequeue(t)) {
    ++got[p->key.src_port];
  }
  EXPECT_EQ(got[1000], 17);  // one packet of the fat flow dropped
  EXPECT_EQ(got[2000], 2);
  EXPECT_EQ(got[3000], 1);
}

TEST(SfqTest, ByteAndPacketCountsConsistent) {
  Sfq::Config cfg;
  Sfq q(cfg);
  TimePoint t;
  q.Enqueue(MakePkt(1, 700), t);
  q.Enqueue(MakePkt(2, 800), t);
  EXPECT_EQ(q.packets(), 2);
  EXPECT_EQ(q.bytes(), 1500);
  q.Dequeue(t);
  q.Dequeue(t);
  EXPECT_EQ(q.bytes(), 0);
  EXPECT_TRUE(q.Empty());
  EXPECT_EQ(q.Dequeue(t), std::nullopt);
}

TEST(DrrTest, FairnessAcrossUnequalBacklogs) {
  Drr::Config cfg;
  Drr q(cfg);
  TimePoint t;
  for (int i = 0; i < 90; ++i) {
    q.Enqueue(MakePkt(1), t);
  }
  for (int i = 0; i < 10; ++i) {
    q.Enqueue(MakePkt(2), t);
  }
  // Dequeue 20: both flows backlogged, so ~10 each.
  std::map<uint16_t, int> got;
  for (int i = 0; i < 20; ++i) {
    auto p = q.Dequeue(t);
    ASSERT_TRUE(p.has_value());
    ++got[p->key.src_port];
  }
  EXPECT_EQ(got[1], 10);
  EXPECT_EQ(got[2], 10);
}

TEST(DrrTest, ReclaimsEmptyFlows) {
  Drr::Config cfg;
  Drr q(cfg);
  TimePoint t;
  for (uint16_t port = 1; port <= 50; ++port) {
    q.Enqueue(MakePkt(port), t);
  }
  while (q.Dequeue(t).has_value()) {
  }
  EXPECT_EQ(q.active_flows(), 0u);
  EXPECT_EQ(q.bytes(), 0);
}

TEST(DrrTest, DropsFromLongestOnOverflow) {
  Drr::Config cfg;
  cfg.limit_bytes = 10 * kMtuBytes;
  Drr q(cfg);
  TimePoint t;
  for (int i = 0; i < 9; ++i) {
    q.Enqueue(MakePkt(1), t);
  }
  q.Enqueue(MakePkt(2), t);
  EXPECT_FALSE(q.Enqueue(MakePkt(2), t));  // overflow; drop from flow 1
  std::map<uint16_t, int> got;
  while (auto p = q.Dequeue(t)) {
    ++got[p->key.src_port];
  }
  EXPECT_EQ(got[1], 8);
  EXPECT_EQ(got[2], 2);
}

TEST(CodelTest, NoDropsBelowTarget) {
  Codel q(1 << 20, CodelParams());
  TimePoint t;
  for (int i = 0; i < 100; ++i) {
    Packet p = MakePkt(1);
    p.queue_enter = t;
    q.Enqueue(std::move(p), t);
    // Dequeue 1 ms later: sojourn far below the 5 ms target.
    auto out = q.Dequeue(t + TimeDelta::Millis(1));
    EXPECT_TRUE(out.has_value());
  }
  EXPECT_EQ(q.drops(), 0u);
}

TEST(CodelTest, DropsWhenSojournPersistsAboveTarget) {
  Codel q(1 << 24, CodelParams());
  TimePoint t0;
  // Fill with packets that will all have ~50 ms sojourn.
  for (int i = 0; i < 500; ++i) {
    Packet p = MakePkt(1);
    p.queue_enter = t0;
    q.Enqueue(std::move(p), t0);
  }
  // Dequeue over 2 simulated seconds with persistent standing delay.
  uint64_t delivered = 0;
  for (int i = 0; i < 500; ++i) {
    TimePoint now = t0 + TimeDelta::Millis(50) + TimeDelta::Millis(4) * i;
    if (q.Dequeue(now).has_value()) {
      ++delivered;
    }
    if (q.Empty()) {
      break;
    }
  }
  EXPECT_GT(q.drops(), 0u);
  EXPECT_GT(delivered, 0u);
}

TEST(FqCodelTest, NewFlowGetsPriority) {
  FqCodel::Config cfg;
  FqCodel q(cfg);
  TimePoint t;
  for (int i = 0; i < 50; ++i) {
    q.Enqueue(MakePkt(1000), t);
  }
  // Cycle the fat flow into the old list.
  auto first = q.Dequeue(t);
  ASSERT_TRUE(first.has_value());
  // A brand-new flow arrives; it should be served before the old flow's
  // remaining backlog.
  q.Enqueue(MakePkt(7777), t);
  auto p = q.Dequeue(t);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.src_port, 7777);
}

TEST(FqCodelTest, LimitsTotalPackets) {
  FqCodel::Config cfg;
  cfg.limit_packets = 10;
  FqCodel q(cfg);
  TimePoint t;
  for (int i = 0; i < 15; ++i) {
    q.Enqueue(MakePkt(1), t);
  }
  EXPECT_EQ(q.packets(), 10);
  EXPECT_EQ(q.drops(), 5u);
}

TEST(StrictPrioTest, LowerBandAlwaysFirst) {
  StrictPrio q(2, 1 << 20);
  TimePoint t;
  Packet low = MakePkt(1);
  low.priority = 1;
  Packet high = MakePkt(2);
  high.priority = 0;
  q.Enqueue(std::move(low), t);
  q.Enqueue(std::move(high), t);
  auto p = q.Dequeue(t);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.src_port, 2);
}

TEST(StrictPrioTest, CustomClassifier) {
  StrictPrio q(2, 1 << 20, [](const Packet& p) { return p.size_bytes > 1000 ? 1u : 0u; });
  TimePoint t;
  q.Enqueue(MakePkt(1, kMtuBytes), t);  // big -> band 1
  q.Enqueue(MakePkt(2, 100), t);        // small -> band 0
  auto p = q.Dequeue(t);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->key.src_port, 2);
}

TEST(StrictPrioTest, PerBandLimit) {
  StrictPrio q(2, 2 * kMtuBytes);
  TimePoint t;
  EXPECT_TRUE(q.Enqueue(MakePkt(1), t));
  EXPECT_TRUE(q.Enqueue(MakePkt(1), t));
  EXPECT_FALSE(q.Enqueue(MakePkt(1), t));
  EXPECT_EQ(q.drops(), 1u);
}

TEST(TokenBucketTest, RefillsAtConfiguredRate) {
  TimePoint t;
  TokenBucket tb(Rate::Mbps(12), /*burst=*/1500, t);  // 1.5 MB/s
  EXPECT_TRUE(tb.CanSend(1500, t));
  tb.Consume(1500, t);
  EXPECT_FALSE(tb.CanSend(1500, t));
  // 1500 bytes at 1.5 MB/s take 1 ms to accumulate (rounded up a nanosecond).
  EXPECT_NEAR(tb.TimeUntilAvailable(1500, t).ToMillis(), 1.0, 1e-5);
  EXPECT_TRUE(tb.CanSend(1500, t + TimeDelta::Millis(1)));
}

TEST(TokenBucketTest, BurstCapsAccumulation) {
  TimePoint t;
  TokenBucket tb(Rate::Mbps(12), 3000, t);
  // After a long idle period, tokens cap at the burst.
  TimePoint later = t + TimeDelta::Seconds(10);
  EXPECT_TRUE(tb.CanSend(3000, later));
  tb.Consume(3000, later);
  EXPECT_FALSE(tb.CanSend(1, later));
}

TEST(TokenBucketTest, RateChangeDoesNotRefillInstantly) {
  // The paper's TBF patch: updating the rate must not grant a token burst.
  TimePoint t;
  TokenBucket tb(Rate::Mbps(12), 1500, t);
  tb.Consume(1500, t);
  tb.SetRate(Rate::Mbps(96), t);
  EXPECT_FALSE(tb.CanSend(1500, t));
  // But the new rate applies going forward: 1500 B at 12 MB/s = 125 us.
  EXPECT_NEAR(tb.TimeUntilAvailable(1500, t).ToMicros(), 125.0, 1e-2);
}

TEST(ShaperTest, EnforcesRate) {
  Simulator sim;
  int64_t out_bytes = 0;
  Shaper shaper(&sim, std::make_unique<DropTailFifo>(1 << 24), Rate::Mbps(12),
                2 * kMtuBytes, [&](Packet p) { out_bytes += p.size_bytes; });
  for (int i = 0; i < 1000; ++i) {
    shaper.Enqueue(MakePkt(1));
  }
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(1));
  // 12 Mbit/s = 1.5 MB/s (plus the initial burst allowance).
  EXPECT_NEAR(static_cast<double>(out_bytes), 1.5e6, 0.05e6);
}

TEST(ShaperTest, RateIncreaseTakesEffectImmediately) {
  Simulator sim;
  int64_t out_pkts = 0;
  Shaper shaper(&sim, std::make_unique<DropTailFifo>(1 << 24), Rate::Kbps(100),
                2 * kMtuBytes, [&](Packet p) {
                  (void)p;
                  ++out_pkts;
                });
  for (int i = 0; i < 200; ++i) {
    shaper.Enqueue(MakePkt(1));
  }
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Millis(100));
  int64_t slow_pkts = out_pkts;
  shaper.SetRate(Rate::Mbps(96));
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Millis(150));
  // At 96 Mbit/s the remaining ~198 packets drain in < 25 ms.
  EXPECT_EQ(out_pkts, 200);
  EXPECT_LT(slow_pkts, 10);
}

TEST(ShaperTest, DrainsCompletely) {
  Simulator sim;
  int64_t out_pkts = 0;
  Shaper shaper(&sim, std::make_unique<DropTailFifo>(1 << 24), Rate::Mbps(96),
                2 * kMtuBytes, [&](Packet p) {
                  (void)p;
                  ++out_pkts;
                });
  for (int i = 0; i < 50; ++i) {
    shaper.Enqueue(MakePkt(1));
  }
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(1));
  EXPECT_EQ(out_pkts, 50);
  EXPECT_TRUE(shaper.queue()->Empty());
}

}  // namespace
}  // namespace bundler
