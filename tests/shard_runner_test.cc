// End-to-end determinism tests for the conservative parallel-DES runner
// (src/sim/shard_runner): one fat-tree incast workload run (a) unsharded on
// a single Simulator and (b) sharded via PartitionTopology + ShardRunner at
// several worker counts must complete the same flows with identical FCTs and
// dispatch the same total event count — the `--shards N` byte-identity
// guarantee, at test scale.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "src/sim/shard_channel.h"
#include "src/sim/shard_runner.h"
#include "src/sim/simulator.h"
#include "src/topo/fat_tree.h"
#include "src/topo/net_builder.h"
#include "src/topo/partition.h"
#include "src/transport/tcp_flow.h"

namespace bundler {
namespace {

constexpr int kWaves = 5;
constexpr auto kWavePeriod = TimeDelta::Millis(40);
constexpr int64_t kFlowBytes = 96 * 1024;
const TimePoint kHalfway = TimePoint::Zero() + TimeDelta::Seconds(1);
const TimePoint kRunUntil = TimePoint::Zero() + TimeDelta::Seconds(4);

struct RunOutput {
  std::vector<double> fct_ms;
  uint64_t events = 0;
  int flows_created = 0;
};

// Staggered incast onto leaf 0, mirroring the fat_tree_incast scenario at a
// fraction of its size. All flows are created up front (deterministic flow-id
// assignment); starts are deferred via ScheduleAt.
void CreateWorkload(Net* net, const FatTreeConfig& cfg, const FatTreeGraph& g,
                    RunOutput* out) {
  int rr = 0;
  for (int w = 0; w < kWaves; ++w) {
    const TimePoint base =
        TimePoint::Zero() + kWavePeriod * w + TimeDelta::Millis(3);
    for (int l = 1; l < cfg.num_leaves; ++l) {
      for (int h = 0; h < cfg.hosts_per_leaf; ++h) {
        Host* src = net->host(
            g.hosts[static_cast<size_t>(l)][static_cast<size_t>(h)]);
        Host* dst = net->host(
            g.hosts[0][static_cast<size_t>(rr % cfg.hosts_per_leaf)]);
        const TimePoint start = base + TimeDelta::Micros((137 * rr) % 1900);
        ++rr;
        TcpFlowParams params;
        params.size_bytes = kFlowBytes;
        params.request_start = start;
        TcpSender* sender = CreateTcpFlow(
            net->flows(), src, dst, params, [out, start](TimePoint end) {
              out->fct_ms.push_back((end - start).ToMillis());
            });
        src->sim()->ScheduleAt(start, [sender]() { sender->Start(); });
      }
    }
  }
  out->flows_created = rr;
}

RunOutput RunUnsharded() {
  RunOutput out;
  FatTreeConfig cfg;
  FatTreeGraph g;
  NetBuilder b = FatTreeBuilder(cfg, &g);
  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  net->flows()->EnableReclaim();
  CreateWorkload(net.get(), cfg, g, &out);
  sim.RunUntil(kRunUntil);
  out.events = sim.events_dispatched();
  return out;
}

RunOutput RunSharded(int workers, bool split_run = false) {
  RunOutput out;
  FatTreeConfig cfg;
  FatTreeGraph g;
  NetBuilder b = FatTreeBuilder(cfg, &g);
  const PartitionPlan plan = PartitionTopology(b);
  EXPECT_EQ(plan.num_groups, cfg.num_leaves + 2);

  std::vector<std::unique_ptr<Simulator>> sim_store;
  std::vector<Simulator*> sims;
  for (int i = 0; i < plan.num_groups; ++i) {
    sim_store.push_back(std::make_unique<Simulator>());
    sims.push_back(sim_store.back().get());
  }
  ShardChannelSet channels;
  std::unique_ptr<Net> net = b.Build(plan, sims, &channels);
  net->flows()->EnableReclaim();
  CreateWorkload(net.get(), cfg, g, &out);

  ShardRunner::Options opt;
  opt.workers = workers;
  ShardRunner sr(sims, &channels, opt);
  if (split_run) {
    sr.RunUntil(kHalfway);  // resumable: two legs must equal one
  }
  sr.RunUntil(kRunUntil);
  for (Simulator* s : sims) {
    out.events += s->events_dispatched();
  }
  return out;
}

TEST(ShardRunnerTest, WorkerCountDoesNotChangeResults) {
  RunOutput w1 = RunSharded(1);
  RunOutput w2 = RunSharded(2);
  RunOutput w4 = RunSharded(4);
  ASSERT_GT(w1.flows_created, 0);
  EXPECT_EQ(w1.fct_ms.size(), static_cast<size_t>(w1.flows_created));
  // Exact equality, order included: the per-shard event sequences depend only
  // on the partition, never on the worker interleaving.
  EXPECT_EQ(w1.fct_ms, w2.fct_ms);
  EXPECT_EQ(w1.fct_ms, w4.fct_ms);
  EXPECT_EQ(w1.events, w2.events);
  EXPECT_EQ(w1.events, w4.events);
}

TEST(ShardRunnerTest, MatchesUnshardedSimulation) {
  RunOutput single = RunUnsharded();
  RunOutput sharded = RunSharded(4);
  ASSERT_EQ(single.fct_ms.size(), sharded.fct_ms.size());
  // Completion callbacks run shard-local, so cross-shard completion order may
  // interleave differently from the single-heap run; the flow outcomes and
  // the total event count must still match exactly (boundary arrivals replace
  // the unsharded run's propagation events one for one).
  std::vector<double> a = single.fct_ms;
  std::vector<double> b = sharded.fct_ms;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  EXPECT_EQ(a, b);
  EXPECT_EQ(single.events, sharded.events);
}

TEST(ShardRunnerTest, RunUntilIsResumable) {
  RunOutput oneshot = RunSharded(2);
  RunOutput resumed = RunSharded(2, /*split_run=*/true);
  EXPECT_EQ(oneshot.fct_ms, resumed.fct_ms);
  EXPECT_EQ(oneshot.events, resumed.events);
}

}  // namespace
}  // namespace bundler
