// Unit tests for the experiment orchestration subsystem (src/runner): spec
// expansion (sweep grid x seeds), thread-count-independent execution and
// serialization, aggregation math (percentiles / confidence intervals), and
// the built-in scenario registry.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "src/runner/builtin_scenarios.h"
#include "src/runner/result_sink.h"
#include "src/runner/scenario.h"
#include "src/runner/trial_runner.h"
#include "src/topo/scenario.h"

namespace bundler {
namespace runner {
namespace {

ScenarioSpec TwoAxisSpec() {
  ScenarioSpec spec;
  spec.name = "test_two_axis";
  spec.variants = {"x", "y"};
  spec.axes = {{"a", {1, 2}}, {"b", {10, 20, 30}}};
  spec.default_trials = 2;
  spec.seed_base = 5;
  return spec;
}

TEST(ExpandTrialsTest, CountsAndOrdering) {
  ScenarioSpec spec = TwoAxisSpec();
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);
  // 2 variants x (2 x 3) grid x 2 seeds.
  ASSERT_EQ(plan.size(), 24u);

  for (size_t i = 0; i < plan.size(); ++i) {
    EXPECT_EQ(plan[i].trial_index, static_cast<int>(i));
  }
  // Variants outermost.
  EXPECT_EQ(plan.front().variant, "x");
  EXPECT_EQ(plan[11].variant, "x");
  EXPECT_EQ(plan[12].variant, "y");
  EXPECT_EQ(plan.back().variant, "y");
  // Seeds innermost: consecutive slots differ only in seed.
  EXPECT_EQ(plan[0].seed, 5u);
  EXPECT_EQ(plan[1].seed, 6u);
  EXPECT_EQ(plan[0].params, plan[1].params);
  // First axis outermost, second axis next: cells iterate b fastest.
  EXPECT_DOUBLE_EQ(plan[0].Param("a"), 1);
  EXPECT_DOUBLE_EQ(plan[0].Param("b"), 10);
  EXPECT_DOUBLE_EQ(plan[2].Param("b"), 20);
  EXPECT_DOUBLE_EQ(plan[4].Param("b"), 30);
  EXPECT_DOUBLE_EQ(plan[6].Param("a"), 2);
  EXPECT_DOUBLE_EQ(plan[6].Param("b"), 10);
}

TEST(ExpandTrialsTest, TrialOverrideAndNoAxes) {
  ScenarioSpec spec;
  spec.name = "test_plain";
  spec.default_trials = 3;
  std::vector<TrialPoint> plan = ExpandTrials(spec, 5);
  ASSERT_EQ(plan.size(), 5u);
  EXPECT_TRUE(plan[0].params.empty());
  EXPECT_EQ(plan[4].seed, 5u);
  EXPECT_EQ(plan[0].variant, "default");
}

// Deterministic synthetic trial: metrics are pure functions of the point.
TrialResult SyntheticTrial(const TrialPoint& p) {
  double base = p.Param("a") * 100 + static_cast<double>(p.seed);
  if (p.variant == "y") {
    base += 1000;
  }
  TrialResult r;
  r.scalars["base"] = base;
  std::vector<double> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back(base + i);
  }
  r.samples["dist"] = samples;
  return r;
}

ScenarioSpec SyntheticSpec() {
  ScenarioSpec spec;
  spec.name = "test_synth";
  spec.variants = {"x", "y"};
  spec.axes = {{"a", {1, 2, 3}}};
  spec.default_trials = 4;
  return spec;
}

TEST(TrialRunnerTest, ResultsOrderedLikePlanRegardlessOfThreads) {
  Scenario scenario{SyntheticSpec(), SyntheticTrial};
  std::vector<TrialPoint> plan = ExpandTrials(scenario.spec, 0);
  for (int threads : {1, 4, 7}) {
    RunnerOptions options;
    options.threads = threads;
    TrialRunner runner(options);
    std::vector<TrialResult> results = runner.Run(scenario, plan);
    ASSERT_EQ(results.size(), plan.size());
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_EQ(results[i].scalars.at("base"),
                SyntheticTrial(plan[i]).scalars.at("base"))
          << "threads=" << threads << " trial=" << i;
    }
  }
}

TEST(TrialRunnerTest, JsonAndCsvByteIdenticalAcrossThreadCounts) {
  Scenario scenario{SyntheticSpec(), SyntheticTrial};
  std::vector<TrialPoint> plan = ExpandTrials(scenario.spec, 0);

  auto render = [&](int threads) {
    RunnerOptions options;
    options.threads = threads;
    TrialRunner runner(options);
    ScenarioSummary summary =
        Aggregate(scenario.spec, plan, runner.Run(scenario, plan));
    return std::pair{ToJson(summary), ToCsv(summary)};
  };
  auto [json1, csv1] = render(1);
  for (int threads : {2, 4, 7}) {
    auto [json_n, csv_n] = render(threads);
    EXPECT_EQ(json1, json_n) << "threads=" << threads;
    EXPECT_EQ(csv1, csv_n) << "threads=" << threads;
  }
  EXPECT_NE(json1.find("\"scenario\": \"test_synth\""), std::string::npos);
}

// End-to-end determinism through the real simulator: a small two-variant
// dumbbell experiment must serialize identically no matter the thread count.
TrialResult TinyExperimentTrial(const TrialPoint& p) {
  ExperimentConfig cfg = PaperExperimentDefaults(p.variant == "bundler", p.seed);
  cfg.bundle_web_load = {Rate::Mbps(30)};
  cfg.duration = TimeDelta::Seconds(3);
  cfg.warmup = TimeDelta::Seconds(1);
  Experiment e(cfg);
  e.Run();
  TrialResult r;
  r.scalars["completed"] = static_cast<double>(e.fct()->completed());
  r.samples["fct_s"] = e.fct()->Fcts(e.MeasuredRequests()).samples();
  return r;
}

TEST(TrialRunnerTest, RealSimulationDeterministicAcrossThreadCounts) {
  ScenarioSpec spec;
  spec.name = "test_tiny_experiment";
  spec.variants = {"status_quo", "bundler"};
  spec.default_trials = 2;
  Scenario scenario{spec, TinyExperimentTrial};
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);

  auto render = [&](int threads) {
    RunnerOptions options;
    options.threads = threads;
    TrialRunner runner(options);
    return ToJson(Aggregate(spec, plan, runner.Run(scenario, plan)));
  };
  std::string json1 = render(1);
  std::string json4 = render(4);
  EXPECT_EQ(json1, json4);
  // Sanity: the experiment actually completed requests.
  EXPECT_EQ(json1.find("\"completed\": {\"n\": 2, \"mean\": 0"), std::string::npos);
}

TEST(AggregateTest, ScalarStatsAcrossSeeds) {
  ScenarioSpec spec;
  spec.name = "test_agg";
  spec.default_trials = 4;
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);
  std::vector<TrialResult> results(4);
  const double values[4] = {1, 2, 3, 10};
  for (int i = 0; i < 4; ++i) {
    results[static_cast<size_t>(i)].scalars["m"] = values[i];
  }
  ScenarioSummary summary = Aggregate(spec, plan, results);
  ASSERT_EQ(summary.cells.size(), 1u);
  const ScalarStat& s = summary.cells[0].scalars.at("m");
  EXPECT_EQ(s.n, 4u);
  EXPECT_DOUBLE_EQ(s.mean, 4.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 10.0);
  EXPECT_DOUBLE_EQ(s.median, 2.5);
  // Sample stddev of {1,2,3,10} = sqrt(50/3); CI = 1.96 * s / sqrt(4).
  double stddev = std::sqrt(50.0 / 3.0);
  EXPECT_NEAR(s.stddev, stddev, 1e-12);
  EXPECT_NEAR(s.ci95_half, 1.96 * stddev / 2.0, 1e-12);
}

TEST(AggregateTest, SamplePoolingAndPercentiles) {
  ScenarioSpec spec;
  spec.name = "test_pool";
  spec.default_trials = 2;
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);
  std::vector<TrialResult> results(2);
  // Pooled: 1..100. Quantile(q) interpolates position q * (n - 1).
  for (int i = 1; i <= 100; ++i) {
    results[i % 2].samples["d"].push_back(i);
  }
  ScenarioSummary summary = Aggregate(spec, plan, results);
  ASSERT_EQ(summary.cells.size(), 1u);
  const SampleStat& s = summary.cells[0].samples.at("d");
  EXPECT_EQ(s.n, 100u);
  EXPECT_DOUBLE_EQ(s.mean, 50.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 100.0);
  EXPECT_DOUBLE_EQ(s.median, 50.5);
  EXPECT_DOUBLE_EQ(s.p25, 25.75);
  EXPECT_DOUBLE_EQ(s.p75, 75.25);
  EXPECT_DOUBLE_EQ(s.p95, 95.05);
  EXPECT_DOUBLE_EQ(s.p99, 99.01);
}

TEST(AggregateTest, CellsFollowPlanOrderAndFindCell) {
  ScenarioSpec spec = TwoAxisSpec();
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);
  std::vector<TrialResult> results(plan.size());
  for (size_t i = 0; i < plan.size(); ++i) {
    results[i].scalars["idx"] = static_cast<double>(i);
  }
  ScenarioSummary summary = Aggregate(spec, plan, results);
  // 2 variants x 6 grid cells.
  ASSERT_EQ(summary.cells.size(), 12u);
  EXPECT_EQ(summary.trials, 2);
  for (const CellSummary& cell : summary.cells) {
    EXPECT_EQ(cell.trials, 2u);
  }
  const CellSummary* cell = FindCell(summary, "y", {{"a", 2}, {"b", 30}});
  ASSERT_NE(cell, nullptr);
  // Last cell of the plan: trials 22 and 23.
  EXPECT_DOUBLE_EQ(cell->scalars.at("idx").mean, 22.5);
  EXPECT_EQ(FindCell(summary, "nope"), nullptr);
  EXPECT_EQ(FindCell(summary, "y", {{"a", 99}}), nullptr);
}

TEST(ResultSinkTest, JsonHandlesNonFiniteAndEmpty) {
  ScenarioSpec spec;
  spec.name = "test_nonfinite";
  spec.default_trials = 1;
  std::vector<TrialPoint> plan = ExpandTrials(spec, 0);
  std::vector<TrialResult> results(1);
  results[0].scalars["bad"] = std::nan("");
  ScenarioSummary summary = Aggregate(spec, plan, results);
  std::string json = ToJson(summary);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  EXPECT_NE(json.find("\"mean\": null"), std::string::npos);

  ScenarioSummary empty;
  empty.scenario = "empty";
  EXPECT_NE(ToJson(empty).find("\"cells\": []"), std::string::npos);
}

TEST(RegistryTest, BuiltinScenariosRegisteredAndListed) {
  RegisterBuiltinScenarios();
  RegisterBuiltinScenarios();  // idempotent
  ScenarioRegistry& registry = ScenarioRegistry::Global();
  ASSERT_NE(registry.Find("fig09_fct"), nullptr);
  ASSERT_NE(registry.Find("fig10_cross_traffic"), nullptr);
  ASSERT_NE(registry.Find("fig13_competing_bundles"), nullptr);
  EXPECT_EQ(registry.Find("no_such_scenario"), nullptr);

  const Scenario* fig13 = registry.Find("fig13_competing_bundles");
  ASSERT_EQ(fig13->spec.axes.size(), 1u);
  EXPECT_EQ(fig13->spec.axes[0].name, "load0_mbps");

  std::vector<const Scenario*> all = registry.List();
  ASSERT_GE(all.size(), 3u);
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(all[i - 1]->spec.name, all[i]->spec.name);
  }
}

TEST(RegistryTest, SweepScenariosRegisteredWithAxes) {
  RegisterBuiltinScenarios();
  ScenarioRegistry& registry = ScenarioRegistry::Global();

  const Scenario* fig11 = registry.Find("fig11_web_cross_sweep");
  ASSERT_NE(fig11, nullptr);
  ASSERT_EQ(fig11->spec.axes.size(), 1u);
  EXPECT_EQ(fig11->spec.axes[0].name, "cross_mbps");
  EXPECT_EQ(fig11->spec.axes[0].values.size(), 7u);
  EXPECT_EQ(fig11->spec.variants.size(), 3u);

  const Scenario* fig12 = registry.Find("fig12_elastic_cross_sweep");
  ASSERT_NE(fig12, nullptr);
  ASSERT_EQ(fig12->spec.axes.size(), 1u);
  EXPECT_EQ(fig12->spec.axes[0].name, "competing_flows");
  EXPECT_EQ(fig12->spec.axes[0].values,
            (std::vector<double>{10, 30, 50}));
}

// Full-figure regression: the fig09 scenario at seed 1 must serialize to the
// same bytes whether its trials run serially or on four workers. This is the
// event engine's determinism contract end to end — FIFO tiebreaks, pooled
// event slots, and reschedule ordering all feed into these bytes.
TEST(BuiltinScenarioTest, Fig09JsonByteIdenticalAcrossThreadCounts) {
  RegisterBuiltinScenarios();
  const Scenario* scenario = ScenarioRegistry::Global().Find("fig09_fct");
  ASSERT_NE(scenario, nullptr);
  // One seeded trial per variant (seed_base = 1 -> --seed 1).
  std::vector<TrialPoint> plan = ExpandTrials(scenario->spec, /*trials=*/1);

  RunnerOptions serial;
  serial.threads = 1;
  RunnerOptions parallel;
  parallel.threads = 4;
  std::vector<TrialResult> r1 = TrialRunner(serial).Run(*scenario, plan);
  std::vector<TrialResult> r4 = TrialRunner(parallel).Run(*scenario, plan);

  std::string json1 = ToJson(Aggregate(scenario->spec, plan, r1));
  std::string json4 = ToJson(Aggregate(scenario->spec, plan, r4));
  EXPECT_EQ(json1, json4);
  std::string csv1 = ToCsv(Aggregate(scenario->spec, plan, r1));
  std::string csv4 = ToCsv(Aggregate(scenario->spec, plan, r4));
  EXPECT_EQ(csv1, csv4);
}

}  // namespace
}  // namespace runner
}  // namespace bundler
