// Tests for the TCP-like transport: completion, throughput limits,
// retransmission under loss and reordering, RTO behavior, backlogged flows,
// and the UDP ping-pong application.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/app/workload.h"
#include "src/net/link.h"
#include "src/qdisc/fifo.h"
#include "src/sim/simulator.h"
#include "src/transport/endpoint.h"
#include "src/transport/tcp_flow.h"
#include "src/transport/udp_pingpong.h"

namespace bundler {
namespace {

// Two hosts joined by symmetric links, with an optional packet mangler on the
// forward path (for loss/reorder injection).
struct TwoHostNet {
  Simulator sim;
  FlowTable flows;
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;
  std::unique_ptr<Link> ab;
  std::unique_ptr<Link> ba;
  std::unique_ptr<LambdaHandler> mangler;

  explicit TwoHostNet(Rate rate = Rate::Mbps(96), TimeDelta rtt = TimeDelta::Millis(50),
                      std::function<bool(const Packet&)> drop = nullptr,
                      int64_t buffer_bytes = 1 << 22) {
    a = std::make_unique<Host>(&sim, MakeAddress(1, 1), nullptr);
    b = std::make_unique<Host>(&sim, MakeAddress(2, 1), nullptr);
    ba = std::make_unique<Link>(&sim, "ba", rate, rtt / 2,
                                std::make_unique<DropTailFifo>(buffer_bytes), a.get());
    ab = std::make_unique<Link>(&sim, "ab", rate, rtt / 2,
                                std::make_unique<DropTailFifo>(buffer_bytes), b.get());
    if (drop) {
      mangler = std::make_unique<LambdaHandler>([this, drop](Packet p) {
        if (!drop(p)) {
          ab->HandlePacket(std::move(p));
        }
      });
      a->set_egress(mangler.get());
    } else {
      a->set_egress(ab.get());
    }
    b->set_egress(ba.get());
  }
};

TEST(TcpFlowTest, ShortFlowCompletesInFewRtts) {
  TwoHostNet net;
  TcpFlowParams params;
  params.size_bytes = 10'000;  // 7 segments: one initial window
  TimePoint done;
  StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
               [&](TimePoint t) { done = t; });
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  EXPECT_GT(done.nanos(), 0);
  // 10 kB inside the initial 10-packet window: ~1 RTT + serialization.
  EXPECT_LT(done.ToMillis(), 2.5 * 50);
}

TEST(TcpFlowTest, LargeFlowSaturatesLink) {
  TwoHostNet net(Rate::Mbps(48), TimeDelta::Millis(20));
  TcpFlowParams params;
  params.size_bytes = 12'000'000;  // 12 MB at 48 Mbit/s = ~2 s
  TimePoint done;
  TcpSender* snd = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
                                [&](TimePoint t) { done = t; });
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(10));
  ASSERT_GT(done.nanos(), 0);
  double goodput_mbps = 12'000'000 * 8 / done.ToSeconds() / 1e6;
  EXPECT_GT(goodput_mbps, 0.8 * 48);
  EXPECT_TRUE(snd->complete());
}

TEST(TcpFlowTest, RecoversFromSingleLoss) {
  int dropped = 0;
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(50), [&](const Packet& p) {
    // Drop exactly one data packet mid-flow.
    if (p.type == PacketType::kData && p.seq == 30 && !p.retransmit && dropped == 0) {
      ++dropped;
      return true;
    }
    return false;
  });
  TcpFlowParams params;
  params.size_bytes = 200'000;
  TimePoint done;
  TcpSender* snd = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
                                [&](TimePoint t) { done = t; });
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(10));
  EXPECT_EQ(dropped, 1);
  ASSERT_GT(done.nanos(), 0);
  EXPECT_GE(snd->retransmits(), 1u);
  // Fast retransmit, not RTO: completion well under the 200 ms min RTO tail.
  EXPECT_LT(done.ToMillis(), 700.0);
}

TEST(TcpFlowTest, RecoversFromBurstLossViaRto) {
  int to_drop = 0;
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(50), [&](const Packet& p) {
    if (p.type == PacketType::kData && p.seq >= 20 && p.seq < 40 && !p.retransmit &&
        to_drop < 20) {
      ++to_drop;
      return true;
    }
    return false;
  });
  TcpFlowParams params;
  params.size_bytes = 100'000;
  TimePoint done;
  TcpSender* snd = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
                                [&](TimePoint t) { done = t; });
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(30));
  ASSERT_GT(done.nanos(), 0) << "flow must complete despite a 20-packet burst loss";
  EXPECT_GE(snd->retransmits(), 1u);
}

TEST(TcpFlowTest, SurvivesRandomLoss) {
  uint64_t count = 0;
  TwoHostNet net(Rate::Mbps(48), TimeDelta::Millis(30), [&](const Packet& p) {
    (void)p;
    return (++count % 37) == 0;  // ~2.7% loss on every forward packet
  });
  TcpFlowParams params;
  params.size_bytes = 2'000'000;
  TimePoint done;
  StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
               [&](TimePoint t) { done = t; });
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(60));
  EXPECT_GT(done.nanos(), 0);
}

TEST(TcpFlowTest, BacklogggedFlowNeverCompletes) {
  TwoHostNet net;
  TcpFlowParams params;
  params.size_bytes = -1;  // backlogged
  TcpSender* snd = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params, nullptr);
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(3));
  EXPECT_FALSE(snd->complete());
  // It should have moved ~3 s * 96 Mbit/s of data.
  EXPECT_GT(snd->delivered_bytes(), static_cast<int64_t>(0.7 * 3 * 96e6 / 8));
}

TEST(TcpFlowTest, SrttConvergesToPathRtt) {
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(80));
  TcpFlowParams params;
  params.size_bytes = 500'000;
  TcpSender* snd = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params, nullptr);
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  // Queueing at 96 Mbit/s for this size is small; srtt ~ 80 ms.
  EXPECT_NEAR(snd->srtt().ToMillis(), 80.0, 15.0);
}

TEST(TcpFlowTest, CompetingFlowsShareFairly) {
  TwoHostNet net(Rate::Mbps(48), TimeDelta::Millis(40), nullptr,
                 /*buffer=*/static_cast<int64_t>(2 * 48e6 / 8 * 0.04));
  TcpFlowParams params;
  params.size_bytes = -1;
  TcpSender* f1 = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params, nullptr);
  TcpSender* f2 = StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params, nullptr);
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(30));
  double share1 = static_cast<double>(f1->delivered_bytes());
  double share2 = static_cast<double>(f2->delivered_bytes());
  double ratio = std::max(share1, share2) / std::min(share1, share2);
  EXPECT_LT(ratio, 2.0) << share1 << " vs " << share2;
  // Combined they saturate the link.
  EXPECT_GT(share1 + share2, 0.8 * 30 * 48e6 / 8);
}

TEST(TcpFlowTest, EveryHostCcCompletesAFlow) {
  for (HostCcType cc : {HostCcType::kCubic, HostCcType::kNewReno, HostCcType::kBbr}) {
    TwoHostNet net;
    TcpFlowParams params;
    params.size_bytes = 300'000;
    params.cc = cc;
    TimePoint done;
    StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params,
                 [&](TimePoint t) { done = t; });
    net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(20));
    EXPECT_GT(done.nanos(), 0) << HostCcTypeName(cc);
  }
}

TEST(TcpFlowTest, IpIdsIncrementPerTransmission) {
  // Retransmitted packets must carry fresh IP IDs (epoch requirement §4.5).
  std::vector<uint16_t> ids_for_seq30;
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(50), [&](const Packet& p) {
    if (p.type == PacketType::kData && p.seq == 30) {
      ids_for_seq30.push_back(p.ip_id);
      if (ids_for_seq30.size() == 1) {
        return true;  // drop the first transmission
      }
    }
    return false;
  });
  TcpFlowParams params;
  params.size_bytes = 150'000;
  StartTcpFlow(&net.flows, net.a.get(), net.b.get(), params, nullptr);
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(10));
  ASSERT_GE(ids_for_seq30.size(), 2u);
  EXPECT_NE(ids_for_seq30[0], ids_for_seq30[1]);
}

TEST(UdpPingPongTest, MeasuresBaseRtt) {
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(60));
  UdpPingPongClient* client = StartUdpPingPong(&net.flows, net.a.get(), net.b.get());
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  EXPECT_GT(client->completed(), 50u);
  EXPECT_NEAR(client->rtt_ms().Median(), 60.0, 2.0);
}

TEST(UdpPingPongTest, RecordingWindowFiltersSamples) {
  TwoHostNet net(Rate::Mbps(96), TimeDelta::Millis(20));
  UdpPingPongClient* client = StartUdpPingPong(&net.flows, net.a.get(), net.b.get());
  client->SetRecordingWindow(TimePoint::Zero() + TimeDelta::Seconds(2),
                             TimePoint::Zero() + TimeDelta::Seconds(3));
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  // ~1 s of samples at 20 ms per round trip = ~50.
  EXPECT_NEAR(static_cast<double>(client->rtt_ms().count()), 50.0, 10.0);
}

TEST(UdpPingPongTest, ClosedLoopIsSelfClocked) {
  // The ping-pong loop must not flood: exactly one request outstanding.
  TwoHostNet net(Rate::Mbps(1), TimeDelta::Millis(100));
  UdpPingPongClient* client = StartUdpPingPong(&net.flows, net.a.get(), net.b.get());
  net.sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(2));
  // At 100 ms RTT, at most ~20 exchanges in 2 s.
  EXPECT_LE(client->completed(), 21u);
  EXPECT_GE(client->completed(), 15u);
}

}  // namespace
}  // namespace bundler
