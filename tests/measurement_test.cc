// Tests for the epoch-based measurement engine (§4.5, Fig. 4): RTT and rate
// derivation from congestion-ACK feedback, robustness to lost boundaries and
// lost feedback, sliding-window aggregation, and the out-of-order fraction
// that drives multipath detection (§5.2).
#include <gtest/gtest.h>

#include <vector>

#include "src/bundler/measurement.h"

namespace bundler {
namespace {

constexpr int64_t kEpochBytes = 24'000;  // 16 MTU-sized packets per epoch

// Drives the engine like a sendbox/receivebox pair on a clean path: boundary
// i is sent at t0 + i*send_gap and its feedback arrives rtt later, with the
// receive counter trailing by exactly one epoch of bytes in flight.
struct FeedbackDriver {
  MeasurementEngine* eng = nullptr;
  TimePoint t0 = TimePoint::Zero();
  TimeDelta send_gap = TimeDelta::Millis(10);
  TimeDelta rtt = TimeDelta::Millis(50);
  uint64_t next_hash = 1;

  // Sends boundary `i` and immediately delivers feedback scheduled for it.
  // Returns (send_time, feedback_time).
  std::pair<TimePoint, TimePoint> Step(int i, bool lose_boundary = false,
                                       bool lose_feedback = false) {
    TimePoint sent = t0 + send_gap * i;
    uint64_t h = next_hash++;
    int64_t bytes_sent = static_cast<int64_t>(i + 1) * kEpochBytes;
    if (!lose_boundary) {
      eng->OnBoundarySent(h, sent, bytes_sent);
    }
    TimePoint fb = sent + rtt;
    if (!lose_boundary && !lose_feedback) {
      eng->OnFeedback(h, bytes_sent, fb);
    }
    return {sent, fb};
  }
};

TEST(MeasurementTest, ComputesRttFromFeedback) {
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  for (int i = 0; i < 10; ++i) {
    d.Step(i);
  }
  EXPECT_TRUE(eng.has_min_rtt());
  EXPECT_NEAR(eng.min_rtt().ToMillis(), 50.0, 0.01);
  EXPECT_NEAR(eng.srtt().ToMillis(), 50.0, 1.0);
}

TEST(MeasurementTest, ComputesSendAndReceiveRates) {
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  TimePoint last_fb;
  for (int i = 0; i < 20; ++i) {
    last_fb = d.Step(i).second;
  }
  BundleMeasurement m = eng.Current(last_fb);
  EXPECT_TRUE(m.fresh);
  // 24 kB per 10 ms = 2.4 MB/s = 19.2 Mbit/s, both directions.
  EXPECT_NEAR(m.send_rate.Mbps(), 19.2, 0.5);
  EXPECT_NEAR(m.recv_rate.Mbps(), 19.2, 0.5);
}

TEST(MeasurementTest, FreshFlagClearsBetweenPolls) {
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  TimePoint fb = d.Step(0).second;
  d.Step(1);
  BundleMeasurement m1 = eng.Current(fb + TimeDelta::Millis(60));
  EXPECT_TRUE(m1.fresh);
  BundleMeasurement m2 = eng.Current(fb + TimeDelta::Millis(61));
  EXPECT_FALSE(m2.fresh);
}

TEST(MeasurementTest, AckedBytesAccumulateAcrossEpochs) {
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  TimePoint last_fb;
  for (int i = 0; i < 5; ++i) {
    last_fb = d.Step(i).second;
  }
  BundleMeasurement m = eng.Current(last_fb);
  // First matched epoch sets the reference; the remaining 4 contribute bytes.
  EXPECT_EQ(m.acked_bytes, 4 * kEpochBytes);
  // A second poll reports zero new bytes.
  EXPECT_EQ(eng.Current(last_fb + TimeDelta::Millis(1)).acked_bytes, 0);
}

TEST(MeasurementTest, RobustToLostBoundaryPacket) {
  // A boundary packet lost between the boxes never gets feedback; the next
  // epoch then spans a longer interval but rates stay correct.
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  TimePoint last_fb;
  for (int i = 0; i < 5; ++i) {
    last_fb = d.Step(i).second;
  }
  d.Step(5, /*lose_boundary=*/false, /*lose_feedback=*/true);
  for (int i = 6; i < 12; ++i) {
    last_fb = d.Step(i).second;
  }
  BundleMeasurement m = eng.Current(last_fb);
  EXPECT_NEAR(m.send_rate.Mbps(), 19.2, 1.0);
  EXPECT_NEAR(m.recv_rate.Mbps(), 19.2, 1.0);
  EXPECT_NEAR(eng.min_rtt().ToMillis(), 50.0, 0.01);
}

TEST(MeasurementTest, IgnoresUnknownFeedbackHashes) {
  // Epoch-size mismatch can make the receivebox sample MORE boundaries than
  // the sendbox recorded; those extra congestion ACKs must be ignored.
  MeasurementEngine eng;
  FeedbackDriver d{&eng};
  d.Step(0);
  eng.OnFeedback(/*hash=*/999999, /*bytes=*/1, d.t0 + TimeDelta::Millis(55));
  EXPECT_EQ(eng.feedback_ignored(), 1u);
  EXPECT_EQ(eng.feedback_matched(), 1u);
}

TEST(MeasurementTest, ExpiresStaleRecordsAtCapacity) {
  MeasurementEngine::Config cfg;
  cfg.max_outstanding = 8;
  MeasurementEngine eng(cfg);
  TimePoint t;
  for (int i = 0; i < 20; ++i) {
    eng.OnBoundarySent(static_cast<uint64_t>(i + 1), t + TimeDelta::Millis(i), 1000 * i);
  }
  EXPECT_GT(eng.records_expired(), 0u);
  // Feedback for an expired record is ignored, not mismatched.
  eng.OnFeedback(1, 500, t + TimeDelta::Millis(100));
  EXPECT_EQ(eng.feedback_matched(), 0u);
}

TEST(MeasurementTest, MinRttTracksTheFloor) {
  MeasurementEngine eng;
  TimePoint t;
  // Three epochs with RTTs 80, 50, 70 ms.
  int64_t bytes = 0;
  int rtts[] = {80, 50, 70};
  for (int i = 0; i < 3; ++i) {
    bytes += kEpochBytes;
    TimePoint sent = t + TimeDelta::Millis(10 * i);
    eng.OnBoundarySent(static_cast<uint64_t>(i + 1), sent, bytes);
    eng.OnFeedback(static_cast<uint64_t>(i + 1), bytes, sent + TimeDelta::Millis(rtts[i]));
  }
  EXPECT_NEAR(eng.min_rtt().ToMillis(), 50.0, 0.01);
}

TEST(MeasurementTest, OutOfOrderFeedbackDetected) {
  MeasurementEngine::Config cfg;
  cfg.min_ooo_samples = 4;
  MeasurementEngine eng(cfg);
  TimePoint t;
  // Two imbalanced paths: even-indexed boundaries take a 200 ms path, odd
  // ones a 100 ms path, so every adjacent pair's feedback arrives inverted
  // with a 40 ms send gap (well above the min_rtt/8 significance guard).
  struct Fb {
    uint64_t hash;
    int64_t bytes;
    TimePoint at;
  };
  std::vector<Fb> feedback;
  for (int i = 0; i < 10; ++i) {
    uint64_t h = static_cast<uint64_t>(i + 1);
    int64_t bytes = (i + 1) * kEpochBytes;
    TimePoint sent = t + TimeDelta::Millis(40 * i);
    eng.OnBoundarySent(h, sent, bytes);
    TimeDelta path_rtt = (i % 2 == 0) ? TimeDelta::Millis(200) : TimeDelta::Millis(100);
    feedback.push_back({h, bytes, sent + path_rtt});
  }
  std::sort(feedback.begin(), feedback.end(),
            [](const Fb& a, const Fb& b) { return a.at < b.at; });
  TimePoint last;
  for (const Fb& f : feedback) {
    eng.OnFeedback(f.hash, f.bytes, f.at);
    last = f.at;
  }
  double frac = eng.OutOfOrderFraction(last);
  EXPECT_GT(frac, 0.3);
}

TEST(MeasurementTest, InOrderFeedbackReadsZero) {
  MeasurementEngine::Config cfg;
  cfg.min_ooo_samples = 4;
  MeasurementEngine eng(cfg);
  FeedbackDriver d{&eng};
  TimePoint last_fb;
  for (int i = 0; i < 30; ++i) {
    last_fb = d.Step(i).second;
  }
  EXPECT_DOUBLE_EQ(eng.OutOfOrderFraction(last_fb), 0.0);
}

TEST(MeasurementTest, OooFractionNeedsMinimumSamples) {
  MeasurementEngine::Config cfg;
  cfg.min_ooo_samples = 20;
  MeasurementEngine eng(cfg);
  TimePoint t;
  // Only 4 samples, 2 out of order: below min_ooo_samples, reads 0.
  eng.OnBoundarySent(1, t, kEpochBytes);
  eng.OnBoundarySent(2, t + TimeDelta::Millis(10), 2 * kEpochBytes);
  eng.OnBoundarySent(3, t + TimeDelta::Millis(20), 3 * kEpochBytes);
  eng.OnBoundarySent(4, t + TimeDelta::Millis(30), 4 * kEpochBytes);
  TimePoint fb = t + TimeDelta::Millis(100);
  eng.OnFeedback(2, 2 * kEpochBytes, fb);
  eng.OnFeedback(1, kEpochBytes, fb + TimeDelta::Millis(1));
  eng.OnFeedback(4, 4 * kEpochBytes, fb + TimeDelta::Millis(2));
  eng.OnFeedback(3, 3 * kEpochBytes, fb + TimeDelta::Millis(3));
  EXPECT_DOUBLE_EQ(eng.OutOfOrderFraction(fb + TimeDelta::Millis(4)), 0.0);
}

TEST(MeasurementTest, OooWindowForgetsOldImbalance) {
  MeasurementEngine::Config cfg;
  cfg.min_ooo_samples = 4;
  cfg.ooo_window = TimeDelta::Seconds(1);
  MeasurementEngine eng(cfg);
  TimePoint t;
  // Burst of out-of-order feedback at t=0, pair members sent 40 ms apart so
  // the inversions clear the significance guard.
  for (int i = 0; i < 10; i += 2) {
    uint64_t h1 = static_cast<uint64_t>(i + 1), h2 = static_cast<uint64_t>(i + 2);
    eng.OnBoundarySent(h1, t + TimeDelta::Millis(60 * i), (i + 1) * kEpochBytes);
    eng.OnBoundarySent(h2, t + TimeDelta::Millis(60 * i + 40), (i + 2) * kEpochBytes);
    eng.OnFeedback(h2, (i + 2) * kEpochBytes, t + TimeDelta::Millis(60 * i + 90));
    eng.OnFeedback(h1, (i + 1) * kEpochBytes, t + TimeDelta::Millis(60 * i + 91));
  }
  EXPECT_GT(eng.OutOfOrderFraction(t + TimeDelta::Millis(800)), 0.0);
  // After the window passes with no new samples the fraction resets.
  EXPECT_DOUBLE_EQ(eng.OutOfOrderFraction(t + TimeDelta::Seconds(3)), 0.0);
}

TEST(MeasurementTest, SampleCallbackSeesEveryEpoch) {
  MeasurementEngine eng;
  std::vector<EpochSample> seen;
  eng.SetSampleCallback([&](const EpochSample& s) { seen.push_back(s); });
  FeedbackDriver d{&eng};
  for (int i = 0; i < 8; ++i) {
    d.Step(i);
  }
  ASSERT_EQ(seen.size(), 8u);
  // First sample has no previous match, so no rates; later ones do.
  EXPECT_FALSE(seen[0].has_rates);
  for (size_t i = 1; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i].has_rates) << i;
    EXPECT_TRUE(seen[i].in_order) << i;
    EXPECT_NEAR(seen[i].rtt.ToMillis(), 50.0, 0.01) << i;
  }
}

TEST(MeasurementTest, CurrentSafeWithNoData) {
  MeasurementEngine eng;
  BundleMeasurement m = eng.Current(TimePoint::Zero() + TimeDelta::Seconds(1));
  EXPECT_FALSE(m.fresh);
  EXPECT_EQ(m.acked_bytes, 0);
}

// Parameterized sweep: the engine must recover exact RTT and rate on clean
// paths across a grid of rates and delays (the Fig. 5/6 setting).
struct SweepParam {
  int rtt_ms;
  double rate_mbps;
};

class MeasurementSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(MeasurementSweepTest, RecoversTruthOnCleanPath) {
  const SweepParam p = GetParam();
  MeasurementEngine eng;
  TimePoint t;
  // Epoch = 0.25 * rtt of bytes at `rate`.
  double epoch_bytes = p.rate_mbps * 1e6 / 8 * (p.rtt_ms / 1000.0) * 0.25;
  TimeDelta gap = TimeDelta::MillisF(p.rtt_ms * 0.25);
  TimePoint last_fb;
  for (int i = 0; i < 40; ++i) {
    TimePoint sent = t + gap * i;
    int64_t bytes = static_cast<int64_t>((i + 1) * epoch_bytes);
    eng.OnBoundarySent(static_cast<uint64_t>(i + 1), sent, bytes);
    last_fb = sent + TimeDelta::Millis(p.rtt_ms);
    eng.OnFeedback(static_cast<uint64_t>(i + 1), bytes, last_fb);
  }
  BundleMeasurement m = eng.Current(last_fb);
  EXPECT_NEAR(m.rtt.ToMillis(), p.rtt_ms, p.rtt_ms * 0.02);
  EXPECT_NEAR(m.send_rate.Mbps(), p.rate_mbps, p.rate_mbps * 0.05);
  EXPECT_NEAR(m.recv_rate.Mbps(), p.rate_mbps, p.rate_mbps * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    RateDelayGrid, MeasurementSweepTest,
    ::testing::Values(SweepParam{20, 24}, SweepParam{20, 96}, SweepParam{50, 24},
                      SweepParam{50, 48}, SweepParam{50, 96}, SweepParam{100, 24},
                      SweepParam{100, 96}, SweepParam{300, 12}),
    [](const auto& tpi) {
      return "rtt" + std::to_string(tpi.param.rtt_ms) + "ms_rate" +
             std::to_string(static_cast<int>(tpi.param.rate_mbps)) + "mbps";
    });

}  // namespace
}  // namespace bundler
