// Tests for the sendbox/receivebox pair wired through the dumbbell topology:
// the inner control loop measures the path, adapts the epoch size, shifts the
// queue to the sendbox, and forwards everything transparently.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "src/app/workload.h"
#include "src/bundler/epoch.h"
#include "src/topo/dumbbell.h"
#include "src/topo/scenario.h"

namespace bundler {
namespace {

TEST(SendboxTest, MeasuresPathRttViaFeedback) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(96);
  cfg.rtt = TimeDelta::Millis(50);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 1, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(10));
  ASSERT_TRUE(net.sendbox()->measurement().has_min_rtt());
  // Min RTT ~ propagation RTT (50 ms), within serialization noise.
  EXPECT_NEAR(net.sendbox()->measurement().min_rtt().ToMillis(), 50.0, 5.0);
}

TEST(SendboxTest, RateConvergesNearBottleneck) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(50);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(30));
  // The sendbox rate should sit near the bottleneck capacity: high enough to
  // not lose throughput, low enough to keep in-network queues small.
  double rate = net.sendbox()->current_rate().Mbps();
  EXPECT_GT(rate, 0.7 * 48);
  EXPECT_LT(rate, 1.6 * 48);
  // And the bundle's goodput through the bottleneck is close to capacity.
  Rate goodput = net.bundle_rate_meter()->AverageRate(
      TimePoint::Zero() + TimeDelta::Seconds(10), TimePoint::Zero() + TimeDelta::Seconds(30));
  EXPECT_GT(goodput.Mbps(), 0.8 * 48);
}

TEST(SendboxTest, ShiftsQueueFromBottleneckToItself) {
  // The paper's core claim (Fig. 2): with Bundler, the standing queue lives
  // at the sendbox, not the bottleneck.
  auto run = [](bool bundler_on) {
    Simulator sim;
    DumbbellConfig cfg;
    cfg.bottleneck_rate = Rate::Mbps(96);
    cfg.rtt = TimeDelta::Millis(50);
    cfg.bundler_enabled = bundler_on;
    Dumbbell net(&sim, cfg);
    StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 8, HostCcType::kCubic,
                   TimePoint::Zero());
    sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(20));
    // Bottleneck queueing delay averaged over the steady-state tail.
    double bneck_ms = net.bottleneck_delay()->delay_ms().MeanInRange(
        TimePoint::Zero() + TimeDelta::Seconds(10),
        TimePoint::Zero() + TimeDelta::Seconds(20));
    double sendbox_ms =
        bundler_on ? net.sendbox()->queue_delay_log().MeanInRange(
                         TimePoint::Zero() + TimeDelta::Seconds(10),
                         TimePoint::Zero() + TimeDelta::Seconds(20))
                   : 0.0;
    return std::pair<double, double>(bneck_ms, sendbox_ms);
  };
  auto [sq_bneck, sq_sendbox] = run(false);
  auto [bd_bneck, bd_sendbox] = run(true);
  // Status quo: Cubic fills the 2-BDP droptail buffer.
  EXPECT_GT(sq_bneck, 30.0);
  // With Bundler: bottleneck queue shrinks by a large factor...
  EXPECT_LT(bd_bneck, sq_bneck / 3);
  // ...and the queue materializes at the sendbox instead.
  EXPECT_GT(bd_sendbox, bd_bneck);
  (void)sq_sendbox;
}

TEST(SendboxTest, EpochSizeAdaptsAndStaysPowerOfTwo) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(96);
  cfg.rtt = TimeDelta::Millis(50);
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(20));
  uint32_t n = net.sendbox()->epoch_size_pkts();
  EXPECT_TRUE((n & (n - 1)) == 0) << n;
  // At ~96 Mbit/s and 50 ms the formula gives 64 packets.
  EXPECT_GE(n, 16u);
  EXPECT_LE(n, 128u);
  // The receivebox converged to the same value (via epoch ctl messages).
  EXPECT_EQ(net.receivebox()->epoch_size_pkts(), n);
}

TEST(SendboxTest, ReceiveboxCountsAndAnswersBoundaries) {
  Simulator sim;
  DumbbellConfig cfg;
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 2, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(10));
  EXPECT_GT(net.receivebox()->bytes_received(), 10'000'000);
  EXPECT_GT(net.receivebox()->feedback_sent(), 50u);
  // Feedback actually reached the sendbox and matched records.
  EXPECT_GT(net.sendbox()->measurement().feedback_matched(), 50u);
}

TEST(SendboxTest, StaysInDelayControlWithoutCrossTraffic) {
  Simulator sim;
  DumbbellConfig cfg;
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(30));
  EXPECT_EQ(net.sendbox()->mode(), BundlerMode::kDelayControl);
  // Exactly the initial mode-log entry; no flapping.
  EXPECT_EQ(net.sendbox()->mode_log().size(), 1u);
}

TEST(SendboxTest, NonBundleTrafficPassesThrough) {
  // ACKs and control traffic arriving at the sendbox must be forwarded, not
  // queued in the bundle scheduler.
  Simulator sim;
  DumbbellConfig cfg;
  Dumbbell net(&sim, cfg);
  // A reverse-direction data packet (dst = our own site) must not be bundled.
  Packet stray;
  stray.type = PacketType::kData;
  stray.key.src = MakeAddress(BundleDstSite(0), 1);
  stray.key.dst = MakeAddress(BundleSrcSite(0), 1);
  stray.size_bytes = 100;
  net.sendbox()->HandlePacket(std::move(stray));
  EXPECT_EQ(net.sendbox()->queue_packets(), 0);
}

TEST(SendboxTest, SchedulerFactoryOverridesDefault) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.sendbox.scheduler_factory = [] {
    return MakeScheduler(SchedulerType::kFifo, 1000);
  };
  Dumbbell net(&sim, cfg);
  EXPECT_STREQ(net.sendbox()->scheduler()->name(), "droptail_fifo");
}

TEST(SendboxTest, DefaultSchedulerIsSfq) {
  Simulator sim;
  DumbbellConfig cfg;
  Dumbbell net(&sim, cfg);
  EXPECT_STREQ(net.sendbox()->scheduler()->name(), "sfq");
}

TEST(SendboxTest, RateLogTracksControlTicks) {
  Simulator sim;
  DumbbellConfig cfg;
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 1, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(2));
  // 10 ms control interval -> ~200 samples in 2 s.
  EXPECT_NEAR(static_cast<double>(net.sendbox()->rate_log().size()), 200.0, 10.0);
}

TEST(SendboxTest, DisabledBundlerIsTransparent) {
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bundler_enabled = false;
  Dumbbell net(&sim, cfg);
  EXPECT_EQ(net.sendbox(), nullptr);
  EXPECT_EQ(net.receivebox(), nullptr);
  // Traffic still flows end to end.
  TimePoint done;
  IssueSingleRequest(&sim, net.flows(), net.server(), net.client(), 50'000,
                     HostCcType::kCubic, nullptr);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 1, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  EXPECT_GT(net.bundle_rate_meter()->total_bytes(), 1'000'000);
  (void)done;
}

}  // namespace
}  // namespace bundler
