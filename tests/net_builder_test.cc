// Unit tests for the composable topology builder (src/topo/net_builder):
// graph-validation failure cases (readable CHECK aborts), routing and bundle
// plumbing on hand-declared graphs, byte-identity between a hand-declared
// dumbbell and the Dumbbell preset on a fig09-style workload, and a
// parking-lot smoke test asserting per-hop queue monitors see the expected
// bottleneck.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/app/workload.h"
#include "src/metrics/fct.h"
#include "src/runner/result_sink.h"
#include "src/runner/scenario.h"
#include "src/topo/dumbbell.h"
#include "src/topo/net_builder.h"
#include "src/topo/scenario.h"
#include "src/util/check.h"

namespace bundler {
namespace {

// --- Validation failures: every malformed graph must die with a readable
// message, not mis-build. ---

TEST(NetBuilderValidationTest, DuplicateSiteIdsDie) {
  NetBuilder b;
  b.AddSite("a", 10);
  EXPECT_DEATH(
      {
        b.AddSite("b", 10);
        NetBuilder::NodeId r = b.AddRouter("r");
        (void)r;
        Simulator sim;
        (void)b.Build(&sim);
      },
      "share site id 10");
}

TEST(NetBuilderValidationTest, DuplicateNodeNamesDie) {
  NetBuilder b;
  b.AddSite("a", 10);
  b.AddSite("a", 11);
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "duplicate node name 'a'");
}

TEST(NetBuilderValidationTest, SiteWithoutEgressDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId r = b.AddRouter("r");
  b.AddWire(r, a);  // a can receive but never send
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "site 'a' has 0 egress edges");
}

TEST(NetBuilderValidationTest, SiteWithTwoEgressEdgesDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId r1 = b.AddRouter("r1");
  NetBuilder::NodeId r2 = b.AddRouter("r2");
  b.AddWire(a, r1);
  b.AddWire(a, r2);
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "site 'a' has 2 egress edges");
}

TEST(NetBuilderValidationTest, DanglingEdgeEndpointDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  EXPECT_DEATH(b.AddWire(a, 7), "refers to node 7");
}

TEST(NetBuilderValidationTest, UnreachableSiteDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId z = b.AddSite("z", 11);
  NetBuilder::NodeId r = b.AddRouter("r");
  b.AddWire(a, r);
  b.AddWire(z, r);  // both sites send to r, but nothing routes *to* z or a
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "unreachable from every router");
}

TEST(NetBuilderValidationTest, MonitorOnWireDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId r = b.AddRouter("r");
  NetBuilder::EdgeId w = b.AddWire(a, r);
  EXPECT_DEATH(b.AddQueueMonitor(w), "attached to wire");
}

TEST(NetBuilderValidationTest, BundleIngressOffForwardRouteDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId c = b.AddSite("c", 100);
  NetBuilder::NodeId x = b.AddSite("x", 200);
  NetBuilder::NodeId r = b.AddRouter("r");
  NetBuilder::NodeId rx = b.AddRouter("rx");
  b.AddLink(a, r, {}, "a_edge");
  b.AddWire(r, c);
  b.AddWire(r, x);
  b.AddWire(c, r);
  // x's private edge: never on the a -> c route.
  NetBuilder::EdgeId stray = b.AddLink(x, rx, {}, "stray");
  b.AddWire(rx, a);

  NetBuilder::BundleSpec bundle;
  bundle.src_site = a;
  bundle.dst_site = c;
  bundle.ingress_edge = stray;
  b.AddBundle(bundle);
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "does not traverse ingress edge 'stray'");
}

TEST(NetBuilderValidationTest, NoReverseRouteDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId c = b.AddSite("c", 100);
  NetBuilder::NodeId r = b.AddRouter("r");
  NetBuilder::NodeId sink = b.AddRouter("sink");
  NetBuilder::EdgeId fwd = b.AddLink(a, r, {}, "fwd");
  b.AddWire(r, c);
  b.AddWire(r, a);      // a stays reachable, so only the reverse check fires
  b.AddWire(c, sink);   // c's egress dead-ends: sink can only reach c
  b.AddWire(sink, c);

  NetBuilder::BundleSpec bundle;
  bundle.src_site = a;
  bundle.dst_site = c;
  bundle.ingress_edge = fwd;
  b.AddBundle(bundle);
  Simulator sim;
  EXPECT_DEATH(b.Build(&sim), "feedback loop cannot close");
}

TEST(NetBuilderValidationTest, TwoBundlesOneSiteEgressDies) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId c = b.AddSite("c", 100);
  NetBuilder::NodeId d = b.AddSite("d", 101);
  NetBuilder::NodeId r = b.AddRouter("r");
  NetBuilder::EdgeId fwd = b.AddLink(a, r, {}, "fwd");
  b.AddWire(r, c);
  b.AddWire(r, d);
  b.AddWire(c, r);
  b.AddWire(d, r);
  NetBuilder::BundleSpec b1;
  b1.src_site = a;
  b1.dst_site = c;
  b1.ingress_edge = fwd;
  b.AddBundle(b1);
  NetBuilder::BundleSpec b2 = b1;
  b2.dst_site = d;
  EXPECT_DEATH(b.AddBundle(b2), "two bundles originate at site 'a'");
}

// --- Routing and plumbing on a hand-declared graph. ---

TEST(NetBuilderTest, RoutesAcrossTwoRoutersAndBundlePlumbingWorks) {
  NetBuilder b;
  NetBuilder::NodeId a = b.AddSite("a", 10);
  NetBuilder::NodeId c = b.AddSite("c", 100);
  NetBuilder::NodeId r1 = b.AddRouter("r1");
  NetBuilder::NodeId r2 = b.AddRouter("r2");
  NetBuilder::LinkSpec slow;
  slow.rate = Rate::Mbps(50);
  slow.delay = TimeDelta::Millis(5);
  NetBuilder::EdgeId e1 = b.AddLink(a, r1, {}, "a_edge");
  NetBuilder::EdgeId mid = b.AddLink(r1, r2, slow, "mid");
  b.AddWire(r2, c);
  b.AddWire(c, r1);  // reverse: c -> r1 -> (mid) ... routes back via r1? no —
  // c's ACKs to site 10 need a route at r1 toward a: none of r1's edges
  // deliver to a. Add one.
  b.AddWire(r1, a);

  NetBuilder::BundleSpec bundle;
  bundle.src_site = a;
  bundle.dst_site = c;
  bundle.ingress_edge = mid;
  b.AddBundle(bundle);

  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  EXPECT_EQ(net->link(e1)->name(), "a_edge");
  EXPECT_EQ(net->num_paths(mid), 1u);
  EXPECT_EQ(net->host_at_site(10), net->host(a));

  // Drive a real transfer through the bundle; sendbox and receivebox must
  // both see traffic and the out-of-band feedback loop must close.
  FctRecorder fct;
  IssueSingleRequest(&sim, net->flows(), net->host(a), net->host(c), 200000,
                     HostCcType::kCubic, &fct);
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));
  EXPECT_EQ(fct.completed(), 1u);
  EXPECT_GT(net->sendbox(0)->bytes_sent(), 200000);
  EXPECT_GT(net->receivebox(0)->bytes_received(), 200000);
  EXPECT_GT(net->receivebox(0)->feedback_sent(), 0u);
}

TEST(NetBuilderTest, ToDotNamesNodesEdgesAndAttachments) {
  DumbbellConfig cfg;
  std::string dot = DumbbellBuilder(cfg).ToDot("dumbbell");
  EXPECT_NE(dot.find("digraph \"dumbbell\""), std::string::npos);
  EXPECT_NE(dot.find("server0"), std::string::npos);
  EXPECT_NE(dot.find("bottleneck"), std::string::npos);
  EXPECT_NE(dot.find("[sendbox b0]"), std::string::npos);
  EXPECT_NE(dot.find("[receivebox b0]"), std::string::npos);
  EXPECT_NE(dot.find("96 Mbit/s"), std::string::npos);
}

// --- Byte-identity: a hand-declared dumbbell must reproduce the Dumbbell
// preset exactly — same construction order, same routes, same simulation,
// byte-identical aggregate JSON on a fig09-style (shortened) workload. ---

runner::TrialResult RunFig09StyleTrial(Experiment& e) {
  e.Run();
  runner::TrialResult r;
  r.scalars["completed"] = static_cast<double>(e.fct()->completed());
  r.samples["fct_s"] = e.fct()->Fcts(e.MeasuredRequests()).samples();
  return r;
}

std::string SerializeTrial(const runner::TrialResult& result) {
  runner::ScenarioSpec spec;
  spec.name = "identity";
  spec.default_trials = 1;
  std::vector<runner::TrialPoint> plan = runner::ExpandTrials(spec, 1);
  return runner::ToJson(runner::Aggregate(spec, plan, {result}));
}

TEST(NetBuilderTest, HandDeclaredDumbbellByteIdenticalToPreset) {
  ExperimentConfig cfg = PaperExperimentDefaults(/*bundler_on=*/true, /*seed=*/1);
  cfg.bundle_web_load = {Rate::Mbps(30)};
  cfg.duration = TimeDelta::Seconds(3);
  cfg.warmup = TimeDelta::Seconds(1);

  // Path A: the Dumbbell preset via Experiment.
  Experiment preset(cfg);
  std::string json_preset = SerializeTrial(RunFig09StyleTrial(preset));

  // Path B: the same graph declared by hand on the builder, workload wired
  // the way Experiment wires it.
  NetBuilder b;
  NetBuilder::NodeId srv = b.AddSite("server0", BundleSrcSite(0));
  NetBuilder::NodeId cli = b.AddSite("client0", BundleDstSite(0));
  NetBuilder::NodeId xsrv = b.AddSite("cross_server", CrossSrcSite());
  NetBuilder::NodeId xcli = b.AddSite("cross_client", CrossDstSite());
  NetBuilder::NodeId bn_router = b.AddRouter("bottleneck_router");
  NetBuilder::NodeId dst_router = b.AddRouter("dst_router");
  NetBuilder::NodeId agg = b.AddRouter("reverse_agg");
  NetBuilder::NodeId rev_router = b.AddRouter("reverse_router");

  NetBuilder::LinkSpec edge;
  b.AddLink(srv, bn_router, edge, "edge0");
  b.AddLink(xsrv, bn_router, edge, "cross_edge");
  NetBuilder::LinkSpec bn;
  bn.rate = cfg.net.bottleneck_rate;
  bn.delay = cfg.net.rtt / 2;
  bn.buffer_bytes = static_cast<int64_t>(cfg.net.bottleneck_rate.BytesPerSecond() *
                                         cfg.net.rtt.ToSeconds() * 2.0);
  NetBuilder::EdgeId bottleneck = b.AddLink(bn_router, dst_router, bn, "bottleneck");
  b.AddWire(dst_router, cli);
  b.AddWire(dst_router, xcli);
  b.AddWire(cli, agg);
  b.AddWire(xcli, agg);
  NetBuilder::LinkSpec rev;
  rev.delay = cfg.net.rtt / 2;
  rev.buffer_bytes = 64 * 1024 * 1024;
  b.AddLink(agg, rev_router, rev, "reverse");
  b.AddWire(rev_router, srv);
  b.AddWire(rev_router, xsrv);

  NetBuilder::BundleSpec bundle;
  bundle.src_site = srv;
  bundle.dst_site = cli;
  bundle.ingress_edge = bottleneck;
  bundle.sendbox = cfg.net.sendbox;
  b.AddBundle(bundle);

  b.AddQueueMonitor(bottleneck);
  b.AddRateMeter(bottleneck, cfg.net.rate_meter_window, Dumbbell::BundleDataFilter(0));
  SiteId cross_src = CrossSrcSite();
  b.AddRateMeter(bottleneck, cfg.net.rate_meter_window, [cross_src](const Packet& pkt) {
    return pkt.type == PacketType::kData && SiteOf(pkt.key.src) == cross_src;
  });

  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  static const SizeCdf kCdf = SizeCdf::InternetCoreRouter();
  FctRecorder fct;
  WebWorkloadConfig wc;
  wc.offered_load = cfg.bundle_web_load[0];
  wc.host_cc = cfg.host_cc;
  wc.const_cwnd_pkts = cfg.const_cwnd_pkts;
  PoissonWebWorkload web(&sim, net->flows(), net->host(srv), net->host(cli), &kCdf, wc,
                         cfg.seed, &fct);
  sim.RunUntil(TimePoint::Zero() + cfg.duration);

  RequestFilter measured;
  measured.min_start = TimePoint::Zero() + cfg.warmup;
  measured.max_start = TimePoint::Zero() + cfg.duration - TimeDelta::Seconds(2);
  runner::TrialResult hand;
  hand.scalars["completed"] = static_cast<double>(fct.completed());
  hand.samples["fct_s"] = fct.Fcts(measured).samples();

  EXPECT_GT(fct.completed(), 0u);
  EXPECT_EQ(SerializeTrial(hand), json_preset);
}

// --- Parking lot: per-hop queue monitors must see the bottleneck where it
// actually is. ---

TEST(NetBuilderTest, ParkingLotMonitorsSeeTheExpectedBottleneck) {
  // hop2 is four times narrower than hop1: a backlogged flow crossing both
  // must queue at hop2, not hop1.
  NetBuilder b;
  NetBuilder::NodeId srv = b.AddSite("srv", 10);
  NetBuilder::NodeId cli = b.AddSite("cli", 100);
  NetBuilder::NodeId r1 = b.AddRouter("r1");
  NetBuilder::NodeId r2 = b.AddRouter("r2");
  NetBuilder::NodeId r3 = b.AddRouter("r3");
  b.AddLink(srv, r1, {}, "srv_edge");
  NetBuilder::LinkSpec hop1_spec;
  hop1_spec.rate = Rate::Mbps(48);
  hop1_spec.delay = TimeDelta::Millis(5);
  hop1_spec.buffer_bytes = 600 * 1000;
  NetBuilder::EdgeId hop1 = b.AddLink(r1, r2, hop1_spec, "hop1");
  NetBuilder::LinkSpec hop2_spec;
  hop2_spec.rate = Rate::Mbps(12);
  hop2_spec.delay = TimeDelta::Millis(5);
  hop2_spec.buffer_bytes = 150 * 1000;
  NetBuilder::EdgeId hop2 = b.AddLink(r2, r3, hop2_spec, "hop2");
  b.AddWire(r3, cli);
  NetBuilder::LinkSpec rev;
  rev.delay = TimeDelta::Millis(5);
  b.AddLink(cli, r1, rev, "reverse");
  b.AddWire(r1, srv);

  NetBuilder::MonitorId hop1_mon = b.AddQueueMonitor(hop1);
  NetBuilder::MonitorId hop2_mon = b.AddQueueMonitor(hop2);

  Simulator sim;
  std::unique_ptr<Net> net = b.Build(&sim);
  StartBulkFlows(&sim, net->flows(), net->host(srv), net->host(cli), 1,
                 HostCcType::kCubic, TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(5));

  double hop1_delay = net->queue_monitor(hop1_mon)->delay_ms().MaxValue();
  double hop2_delay = net->queue_monitor(hop2_mon)->delay_ms().MaxValue();
  EXPECT_GT(net->link(hop2)->stats().bytes_sent, uint64_t{1000 * 1000});
  // The narrow hop owns the queue; the wide hop stays near-empty.
  EXPECT_GT(hop2_delay, 20.0);
  EXPECT_LT(hop1_delay, hop2_delay / 4);
}

// Multipath edges: monitors attach to every path; per-path accessors work.
TEST(NetBuilderTest, MultipathEdgeAccessorsAndMonitors) {
  DumbbellConfig cfg;
  cfg.num_paths = 3;
  Simulator sim;
  Dumbbell net(&sim, cfg);
  EXPECT_EQ(net.num_paths(), 3u);
  EXPECT_NE(net.path_link(2), nullptr);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 6, HostCcType::kCubic,
                 TimePoint::Zero());
  sim.RunUntil(TimePoint::Zero() + TimeDelta::Seconds(2));
  // The shared meter saw traffic on some path.
  EXPECT_GT(net.bundle_rate_meter()->total_bytes(), 0);
}

}  // namespace
}  // namespace bundler
