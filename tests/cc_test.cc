// Unit tests for host- and bundle-side congestion control algorithms: window
// laws, loss reactions, BBR phase progression, Copa/BasicDelay rate behavior.
#include <gtest/gtest.h>

#include <memory>

#include "src/cc/basic_delay.h"
#include "src/cc/bbr.h"
#include "src/cc/cc.h"
#include "src/cc/const_cwnd.h"
#include "src/cc/copa.h"
#include "src/cc/cubic.h"
#include "src/cc/new_reno.h"

namespace bundler {
namespace {

AckSample Ack(TimePoint now, TimeDelta rtt, int pkts = 1, double inflight = 10,
              Rate delivery = Rate::Mbps(10)) {
  AckSample s;
  s.now = now;
  s.acked_pkts = pkts;
  s.rtt = rtt;
  s.rtt_valid = true;
  s.inflight_pkts = inflight;
  s.delivery_rate = delivery;
  return s;
}

BundleMeasurement Meas(TimePoint now, TimeDelta rtt, TimeDelta min_rtt, Rate send,
                       Rate recv, int64_t acked = 100'000) {
  BundleMeasurement m;
  m.now = now;
  m.rtt = rtt;
  m.min_rtt = min_rtt;
  m.send_rate = send;
  m.recv_rate = recv;
  m.acked_bytes = acked;
  m.fresh = true;
  return m;
}

// --- NewReno ---

TEST(NewRenoTest, SlowStartDoublesPerRtt) {
  NewReno cc;
  TimePoint t;
  // One ACK per acked packet: cwnd grows by 1 per ACK in slow start.
  double before = cc.CwndPkts();
  for (int i = 0; i < 10; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  EXPECT_DOUBLE_EQ(cc.CwndPkts(), before + 10);
}

TEST(NewRenoTest, CongestionAvoidanceGrowsByOnePerRtt) {
  NewReno cc;
  TimePoint t;
  LossSample loss;
  loss.now = t;
  loss.inflight_pkts = cc.CwndPkts();
  cc.OnLoss(loss);  // leaves slow start
  double w = cc.CwndPkts();
  // cwnd ACKs should grow cwnd by ~1.
  int acks = static_cast<int>(w);
  for (int i = 0; i < acks; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  EXPECT_NEAR(cc.CwndPkts(), w + 1.0, 0.2);
}

TEST(NewRenoTest, LossHalvesWindow) {
  NewReno cc;
  TimePoint t;
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  double before = cc.CwndPkts();
  LossSample loss;
  loss.now = t;
  loss.inflight_pkts = before;
  cc.OnLoss(loss);
  EXPECT_NEAR(cc.CwndPkts(), before / 2, 1.0);
  EXPECT_NEAR(cc.ssthresh(), before / 2, 1.0);
}

TEST(NewRenoTest, TimeoutCollapsesToMinimum) {
  NewReno cc;
  TimePoint t;
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  LossSample loss;
  loss.now = t;
  loss.is_timeout = true;
  loss.inflight_pkts = cc.CwndPkts();
  cc.OnLoss(loss);
  EXPECT_LE(cc.CwndPkts(), 4.0);
}

// --- Cubic ---

TEST(CubicTest, SlowStartThenBackoff) {
  Cubic cc;
  TimePoint t;
  for (int i = 0; i < 50; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  double before = cc.CwndPkts();
  EXPECT_GE(before, 50.0);
  LossSample loss;
  loss.now = t;
  loss.inflight_pkts = before;
  cc.OnLoss(loss);
  // Multiplicative decrease by beta = 0.7.
  EXPECT_NEAR(cc.CwndPkts(), before * 0.7, 1.0);
}

TEST(CubicTest, ConcaveRecoveryTowardWmax) {
  Cubic cc;
  TimePoint t;
  for (int i = 0; i < 100; ++i) {
    cc.OnAck(Ack(t, TimeDelta::Millis(50)));
  }
  double w_max = cc.CwndPkts();
  LossSample loss;
  loss.now = t;
  loss.inflight_pkts = w_max;
  cc.OnLoss(loss);

  // Feed ACKs over simulated time; cubic should approach w_max but grow
  // slowly near it (concave region).
  TimePoint now = t;
  double prev = cc.CwndPkts();
  double max_step = 0;
  for (int rtt = 0; rtt < 100; ++rtt) {
    now += TimeDelta::Millis(50);
    for (int i = 0; i < static_cast<int>(cc.CwndPkts()); ++i) {
      cc.OnAck(Ack(now, TimeDelta::Millis(50)));
    }
    max_step = std::max(max_step, cc.CwndPkts() - prev);
    prev = cc.CwndPkts();
    if (cc.CwndPkts() >= w_max) {
      break;
    }
  }
  EXPECT_GE(cc.CwndPkts(), w_max * 0.95);
}

TEST(CubicTest, WindowNeverBelowTwo) {
  Cubic cc;
  TimePoint t;
  for (int i = 0; i < 20; ++i) {
    LossSample loss;
    loss.now = t;
    loss.is_timeout = true;
    loss.inflight_pkts = cc.CwndPkts();
    cc.OnLoss(loss);
    t += TimeDelta::Millis(10);
  }
  EXPECT_GE(cc.CwndPkts(), 1.0);
}

// --- BBR host ---

TEST(BbrHostTest, StartupExitsOnBandwidthPlateau) {
  BbrHost cc;
  TimePoint now;
  // Constant delivery rate: after ~3 rounds of no bandwidth growth, BBR
  // should leave startup, which shows as the pacing gain dropping and cwnd
  // settling near 2 * BDP.
  for (int i = 0; i < 400; ++i) {
    now += TimeDelta::Millis(10);
    cc.OnAck(Ack(now, TimeDelta::Millis(50), 1, 20, Rate::Mbps(48)));
  }
  // BDP at 48 Mbps, 50 ms = 300 kB ~ 207 pkts. cwnd gain 2 -> ~414.
  EXPECT_GT(cc.CwndPkts(), 100.0);
  EXPECT_LT(cc.CwndPkts(), 1000.0);
  EXPECT_GT(cc.PacingRate().Mbps(), 24.0);
  EXPECT_LT(cc.PacingRate().Mbps(), 96.0);
}

TEST(BbrCoreTest, PhaseProgression) {
  BbrCore core(Rate::Mbps(1));
  TimePoint now;
  EXPECT_EQ(core.phase(), BbrCore::Phase::kStartup);
  for (int i = 0; i < 1000 && core.phase() == BbrCore::Phase::kStartup; ++i) {
    now += TimeDelta::Millis(10);
    core.OnSample(now, Rate::Mbps(48), TimeDelta::Millis(50), 20);
  }
  EXPECT_NE(core.phase(), BbrCore::Phase::kStartup);
  // Eventually cycles through to ProbeBW.
  for (int i = 0; i < 1000 && core.phase() != BbrCore::Phase::kProbeBw; ++i) {
    now += TimeDelta::Millis(10);
    core.OnSample(now, Rate::Mbps(48), TimeDelta::Millis(50), 20);
  }
  EXPECT_EQ(core.phase(), BbrCore::Phase::kProbeBw);
  EXPECT_NEAR(core.btl_bw().Mbps(), 48.0, 1.0);
  EXPECT_NEAR(core.rt_prop().ToMillis(), 50.0, 1.0);
}

TEST(BbrCoreTest, ResetClearsModel) {
  BbrCore core(Rate::Mbps(1));
  TimePoint now;
  for (int i = 0; i < 500; ++i) {
    now += TimeDelta::Millis(10);
    core.OnSample(now, Rate::Mbps(48), TimeDelta::Millis(50), 20);
  }
  core.Reset(now, Rate::Mbps(2));
  EXPECT_EQ(core.phase(), BbrCore::Phase::kStartup);
}

// --- ConstCwnd ---

TEST(ConstCwndTest, NeverChanges) {
  ConstCwnd cc(450);
  TimePoint t;
  cc.OnAck(Ack(t, TimeDelta::Millis(1)));
  LossSample loss;
  loss.now = t;
  loss.is_timeout = true;
  cc.OnLoss(loss);
  EXPECT_DOUBLE_EQ(cc.CwndPkts(), 450.0);
}

// --- Copa (bundle) ---

TEST(CopaTest, SlowStartUntilQueueBuilds) {
  Copa copa(Rate::Mbps(12));
  TimePoint now;
  // No queueing delay (rtt == min_rtt): Copa should ramp up.
  Rate first = copa.TargetRate();
  for (int i = 0; i < 20; ++i) {
    now += TimeDelta::Millis(50);
    copa.OnMeasurement(Meas(now, TimeDelta::Millis(50), TimeDelta::Millis(50),
                            copa.TargetRate(), copa.TargetRate()));
  }
  EXPECT_GT(copa.TargetRate().bps(), first.bps());
  EXPECT_TRUE(copa.in_slow_start());
}

TEST(CopaTest, BacksOffUnderQueueingDelay) {
  Copa copa(Rate::Mbps(48));
  TimePoint now;
  // Large standing queue: rtt 150 ms vs min 50 ms. Copa's target rate
  // (1/(delta*dq) pkts/s ~ 24 pkt/s) is far below the implied window, so the
  // window must shrink over time.
  for (int i = 0; i < 10; ++i) {
    now += TimeDelta::Millis(50);
    copa.OnMeasurement(Meas(now, TimeDelta::Millis(150), TimeDelta::Millis(50),
                            Rate::Mbps(48), Rate::Mbps(48)));
  }
  double w0 = copa.cwnd_pkts();
  for (int i = 0; i < 40; ++i) {
    now += TimeDelta::Millis(50);
    copa.OnMeasurement(Meas(now, TimeDelta::Millis(150), TimeDelta::Millis(50),
                            Rate::Mbps(48), Rate::Mbps(48)));
  }
  EXPECT_LT(copa.cwnd_pkts(), w0);
  EXPECT_FALSE(copa.in_slow_start());
}

TEST(CopaTest, ConvergesNearBottleneckOnCleanPath) {
  // Closed-loop toy model: the "network" delays by a queue that grows when
  // Copa sends above 48 Mbit/s. Copa should stabilize near the capacity.
  Copa copa(Rate::Mbps(6));
  TimePoint now;
  const double cap_bps = 48e6;
  double queue_bytes = 0;
  const TimeDelta base_rtt = TimeDelta::Millis(50);
  for (int i = 0; i < 2000; ++i) {
    TimeDelta tick = TimeDelta::Millis(10);
    now += tick;
    double in = copa.TargetRate().bps() / 8 * tick.ToSeconds();
    double out = cap_bps / 8 * tick.ToSeconds();
    queue_bytes = std::max(0.0, queue_bytes + in - out);
    TimeDelta rtt = base_rtt + TimeDelta::SecondsF(queue_bytes * 8 / cap_bps);
    Rate recv = Rate::BitsPerSec(std::min(copa.TargetRate().bps(), cap_bps));
    if (i % 5 == 0) {
      copa.OnMeasurement(Meas(now, rtt, base_rtt, copa.TargetRate(), recv));
    }
  }
  EXPECT_GT(copa.TargetRate().Mbps(), 24.0);
  EXPECT_LT(copa.TargetRate().Mbps(), 72.0);
  // Standing queue delay should be modest (Copa targets ~1/(delta*dq)).
  double queue_delay_ms = queue_bytes * 8 / cap_bps * 1000;
  EXPECT_LT(queue_delay_ms, 50.0);
}

TEST(CopaTest, ResetRestoresInitialState) {
  Copa copa(Rate::Mbps(12));
  TimePoint now;
  for (int i = 0; i < 50; ++i) {
    now += TimeDelta::Millis(50);
    copa.OnMeasurement(Meas(now, TimeDelta::Millis(150), TimeDelta::Millis(50),
                            Rate::Mbps(48), Rate::Mbps(48)));
  }
  copa.Reset(now, Rate::Zero());
  EXPECT_TRUE(copa.in_slow_start());
  EXPECT_DOUBLE_EQ(copa.velocity(), 1.0);
}

TEST(CopaTest, WarmResetSeedsWindowFromObservedRate) {
  // A cold reset reseeds the window from the configured initial rate (12
  // Mbit/s); a warm reset passes the observed rate at the mode switch, so
  // the first post-reset measurement seeds a proportionally larger window
  // and the controller does not collapse the bundle while it relearns.
  TimePoint now;
  auto first_cwnd_after = [&](Rate seed) {
    Copa copa(Rate::Mbps(12));
    copa.Reset(now, seed);
    copa.OnMeasurement(Meas(now + TimeDelta::Millis(50), TimeDelta::Millis(52),
                            TimeDelta::Millis(50), Rate::Mbps(72), Rate::Mbps(72)));
    return copa.cwnd_pkts();
  };
  double cold = first_cwnd_after(Rate::Zero());
  double warm = first_cwnd_after(Rate::Mbps(72));
  // The seed basis is 6x larger (72 vs 12 Mbit/s); the slow-start ack term
  // common to both dilutes the ratio, but the warm window must stay a
  // multiple of the cold one.
  EXPECT_GT(warm, 2.0 * cold);
}

TEST(CopaTest, IgnoresStaleMeasurements) {
  Copa copa(Rate::Mbps(12));
  TimePoint now;
  copa.OnMeasurement(Meas(now, TimeDelta::Millis(50), TimeDelta::Millis(50),
                          Rate::Mbps(12), Rate::Mbps(12)));
  Rate r = copa.TargetRate();
  BundleMeasurement stale = Meas(now, TimeDelta::Millis(50), TimeDelta::Millis(50),
                                 Rate::Mbps(12), Rate::Mbps(12));
  stale.fresh = false;
  stale.acked_bytes = 0;
  for (int i = 0; i < 10; ++i) {
    copa.OnMeasurement(stale);
  }
  EXPECT_DOUBLE_EQ(copa.TargetRate().bps(), r.bps());
}

// --- BasicDelay (bundle) ---

TEST(BasicDelayTest, TracksAvailableCapacity) {
  BasicDelay bd(Rate::Mbps(12));
  TimePoint now;
  // Receive rate caps at 96 Mbit/s with small delay error; rate should
  // approach mu.
  for (int i = 0; i < 500; ++i) {
    now += TimeDelta::Millis(10);
    Rate r = bd.TargetRate();
    Rate recv = Rate::BitsPerSec(std::min(r.bps(), 96e6));
    bd.OnMeasurement(Meas(now, TimeDelta::Millis(52), TimeDelta::Millis(50), r, recv));
  }
  EXPECT_NEAR(bd.TargetRate().Mbps(), 96.0, 15.0);
}

TEST(BasicDelayTest, ReducesRateWhenDelayAboveTarget) {
  BasicDelay bd(Rate::Mbps(96));
  TimePoint now;
  for (int i = 0; i < 10; ++i) {
    now += TimeDelta::Millis(10);
    bd.OnMeasurement(Meas(now, TimeDelta::Millis(50), TimeDelta::Millis(50),
                          Rate::Mbps(96), Rate::Mbps(96)));
  }
  // Now a large standing delay appears: 100 ms over a 50 ms floor.
  Rate before = bd.TargetRate();
  now += TimeDelta::Millis(10);
  bd.OnMeasurement(Meas(now, TimeDelta::Millis(150), TimeDelta::Millis(50),
                        Rate::Mbps(96), Rate::Mbps(96)));
  EXPECT_LT(bd.TargetRate().bps(), before.bps());
}

TEST(BasicDelayTest, DelayTargetHasFloor) {
  BasicDelay bd(Rate::Mbps(12));
  // 1/8 of min RTT, but at least 2 ms.
  EXPECT_NEAR(bd.delay_target(TimeDelta::Millis(80)).ToMillis(), 10.0, 1e-9);
  EXPECT_NEAR(bd.delay_target(TimeDelta::Millis(4)).ToMillis(), 2.0, 1e-9);
}

// --- Factories ---

TEST(FactoryTest, MakesEveryHostCc) {
  EXPECT_STREQ(MakeHostCc(HostCcType::kCubic)->name(), "cubic");
  EXPECT_STREQ(MakeHostCc(HostCcType::kNewReno)->name(), "newreno");
  EXPECT_STREQ(MakeHostCc(HostCcType::kBbr)->name(), "bbr");
  EXPECT_STREQ(MakeHostCc(HostCcType::kConstCwnd, 123)->name(), "const_cwnd");
  EXPECT_DOUBLE_EQ(MakeHostCc(HostCcType::kConstCwnd, 123)->CwndPkts(), 123.0);
}

TEST(FactoryTest, MakesEveryBundleCc) {
  EXPECT_STREQ(MakeBundleCc(BundleCcType::kCopa, Rate::Mbps(1))->name(), "copa");
  EXPECT_STREQ(MakeBundleCc(BundleCcType::kBasicDelay, Rate::Mbps(1))->name(),
               "basic_delay");
  EXPECT_STREQ(MakeBundleCc(BundleCcType::kBbr, Rate::Mbps(1))->name(), "bbr");
}

TEST(FactoryTest, TypeNamesRoundTrip) {
  EXPECT_STREQ(HostCcTypeName(HostCcType::kCubic), "cubic");
  EXPECT_STREQ(HostCcTypeName(HostCcType::kBbr), "bbr");
  EXPECT_STREQ(BundleCcTypeName(BundleCcType::kCopa), "copa");
  EXPECT_STREQ(BundleCcTypeName(BundleCcType::kBasicDelay), "basic_delay");
}

// Property sweep: every bundle CC must keep its target rate positive and
// finite under a range of plausible measurement streams.
class BundleCcPropertyTest : public ::testing::TestWithParam<BundleCcType> {};

TEST_P(BundleCcPropertyTest, RateStaysPositiveAndFinite) {
  auto cc = MakeBundleCc(GetParam(), Rate::Mbps(12));
  TimePoint now;
  for (int i = 0; i < 500; ++i) {
    now += TimeDelta::Millis(10);
    TimeDelta rtt = TimeDelta::Millis(50 + (i % 7) * 20);
    Rate send = Rate::Mbps(10 + (i % 5) * 20);
    Rate recv = Rate::Mbps(10 + (i % 3) * 25);
    cc->OnMeasurement(Meas(now, rtt, TimeDelta::Millis(50), send, recv));
    EXPECT_GT(cc->TargetRate().bps(), 0.0) << "tick " << i;
    EXPECT_LT(cc->TargetRate().bps(), 1e12) << "tick " << i;
  }
}

TEST_P(BundleCcPropertyTest, ResetIsIdempotent) {
  auto cc = MakeBundleCc(GetParam(), Rate::Mbps(12));
  TimePoint now;
  for (int i = 0; i < 50; ++i) {
    now += TimeDelta::Millis(10);
    cc->OnMeasurement(Meas(now, TimeDelta::Millis(80), TimeDelta::Millis(50),
                           Rate::Mbps(20), Rate::Mbps(20)));
  }
  cc->Reset(now, Rate::Zero());
  Rate r1 = cc->TargetRate();
  cc->Reset(now, Rate::Zero());
  EXPECT_DOUBLE_EQ(cc->TargetRate().bps(), r1.bps());
}

INSTANTIATE_TEST_SUITE_P(AllBundleCcs, BundleCcPropertyTest,
                         ::testing::Values(BundleCcType::kCopa, BundleCcType::kBasicDelay,
                                           BundleCcType::kBbr),
                         [](const auto& tpi) {
                           return std::string(BundleCcTypeName(tpi.param));
                         });

// Host CC property sweep.
class HostCcPropertyTest : public ::testing::TestWithParam<HostCcType> {};

TEST_P(HostCcPropertyTest, WindowStaysPositiveUnderMixedSignals) {
  auto cc = MakeHostCc(GetParam());
  TimePoint now;
  for (int i = 0; i < 1000; ++i) {
    now += TimeDelta::Millis(5);
    if (i % 97 == 13) {
      LossSample loss;
      loss.now = now;
      loss.is_timeout = (i % 194 == 13);
      loss.inflight_pkts = cc->CwndPkts();
      cc->OnLoss(loss);
    } else {
      cc->OnAck(Ack(now, TimeDelta::Millis(20 + i % 60), 1, cc->CwndPkts() / 2,
                    Rate::Mbps(5 + i % 40)));
    }
    EXPECT_GE(cc->CwndPkts(), 1.0) << "tick " << i;
    EXPECT_LT(cc->CwndPkts(), 1e7) << "tick " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(AllHostCcs, HostCcPropertyTest,
                         ::testing::Values(HostCcType::kCubic, HostCcType::kNewReno,
                                           HostCcType::kBbr, HostCcType::kConstCwnd),
                         [](const auto& tpi) {
                           return std::string(HostCcTypeName(tpi.param));
                         });

}  // namespace
}  // namespace bundler
