// Cross-shard boundary ring tests (src/sim/shard_channel): single-threaded
// full/empty/capacity semantics, FIFO under a real producer/consumer thread
// pair (the ThreadSanitizer job in scripts/check.sh runs this suite to vet
// the acquire/release protocol), and ShardChannel's simulation-determined
// delivery metadata plus its overflow / frozen-lookahead CHECKs.
#include <gtest/gtest.h>

#include <cstdint>
#include <thread>

#include "src/net/packet.h"
#include "src/sim/shard_channel.h"
#include "src/sim/simulator.h"

namespace bundler {
namespace {

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(5).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(8).capacity(), 8u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
}

TEST(SpscRingTest, FullAndEmptySemantics) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.TryPop(&out));
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPush(static_cast<int>(i)));
  }
  EXPECT_FALSE(ring.TryPush(99));  // full: push refuses, drops nothing
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));
  // Wrap-around after draining: indices are monotonic, masking handles it.
  EXPECT_TRUE(ring.TryPush(7));
  ASSERT_TRUE(ring.TryPop(&out));
  EXPECT_EQ(out, 7);
}

// The one concurrency pattern the ring must support: exactly one producer
// thread and one consumer thread, both spinning. Run under TSan this checks
// the acquire/release pairing; under any build it checks FIFO and loss-free
// delivery through a ring much smaller than the message count.
TEST(SpscRingTest, FifoUnderProducerConsumerThreads) {
  constexpr uint64_t kMessages = 50000;
  SpscRing<uint64_t> ring(64);
  std::thread producer([&ring]() {
    for (uint64_t i = 0; i < kMessages; ++i) {
      while (!ring.TryPush(static_cast<uint64_t>(i))) {
        std::this_thread::yield();  // single-core boxes: let the consumer run
      }
    }
  });
  uint64_t expect = 0;
  while (expect < kMessages) {
    uint64_t v = 0;
    if (ring.TryPop(&v)) {
      ASSERT_EQ(v, expect);
      ++expect;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  uint64_t v = 0;
  EXPECT_FALSE(ring.TryPop(&v));
}

class NullSink : public PacketHandler {
 public:
  void HandlePacket(Packet pkt) override { (void)pkt; }
};

Packet MakePacket(uint32_t bytes) {
  Packet pkt;  // move-only: each send gets a fresh one
  pkt.size_bytes = bytes;
  return pkt;
}

ShardChannel::Spec TestSpec(Simulator* sim, PacketHandler* dst) {
  ShardChannel::Spec spec;
  spec.id = 7;
  spec.src_shard = 0;
  spec.dst_shard = 1;
  spec.lookahead_ns = TimeDelta::Millis(2).nanos();
  spec.dst = dst;
  spec.src_sim = sim;
  spec.capacity = 8;
  return spec;
}

TEST(ShardChannelTest, StampsSimulationDeterminedDeliveryMetadata) {
  Simulator sim;
  NullSink dst;
  ShardChannel ch(TestSpec(&sim, &dst));

  ch.SendBoundary(TimePoint::FromNanos(1000), TimeDelta::Millis(2),
                  MakePacket(1500));
  ch.SendBoundary(TimePoint::FromNanos(3000), TimeDelta::Millis(2),
                  MakePacket(40));

  BoundaryMsg m;
  ASSERT_TRUE(ch.TryPop(&m));
  EXPECT_EQ(m.sent_ns, 1000);
  EXPECT_EQ(m.deliver_ns, 1000 + TimeDelta::Millis(2).nanos());
  EXPECT_EQ(m.seq, 0u);
  EXPECT_EQ(m.channel, 7u);
  EXPECT_EQ(m.dst, &dst);
  EXPECT_EQ(m.pkt.size_bytes, 1500);
  ASSERT_TRUE(ch.TryPop(&m));
  EXPECT_EQ(m.seq, 1u);  // per-channel FIFO sequence
  EXPECT_EQ(m.pkt.size_bytes, 40);
  EXPECT_FALSE(ch.TryPop(&m));
}

TEST(ShardChannelDeathTest, ZeroLookaheadDies) {
  Simulator sim;
  NullSink dst;
  ShardChannel::Spec spec = TestSpec(&sim, &dst);
  spec.lookahead_ns = 0;
  EXPECT_DEATH(ShardChannel ch(spec), "lookahead_ns > 0");
}

TEST(ShardChannelDeathTest, ChangedBoundaryDelayDies) {
  Simulator sim;
  NullSink dst;
  ShardChannel ch(TestSpec(&sim, &dst));
  EXPECT_DEATH(ch.SendBoundary(TimePoint::FromNanos(10), TimeDelta::Millis(3),
                               MakePacket(100)),
               "boundary link delay changed");
}

TEST(ShardChannelDeathTest, RingOverflowDiesLoudly) {
  Simulator sim;
  NullSink dst;
  ShardChannel::Spec spec = TestSpec(&sim, &dst);
  spec.capacity = 1;
  ShardChannel ch(spec);
  ch.SendBoundary(TimePoint::FromNanos(10), TimeDelta::Millis(2),
                  MakePacket(100));
  EXPECT_DEATH(ch.SendBoundary(TimePoint::FromNanos(20), TimeDelta::Millis(2),
                               MakePacket(100)),
               "overflow");
}

}  // namespace
}  // namespace bundler
