// Tests for the request-response workload leg: a small client->server
// request (retried on loss) triggers the server's TCP response, so FCTs span
// the full application round trip, matching the paper's request semantics.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "src/app/workload.h"
#include "src/metrics/fct.h"
#include "src/net/link.h"
#include "src/qdisc/fifo.h"
#include "src/sim/simulator.h"
#include "src/transport/endpoint.h"

namespace bundler {
namespace {

struct ReqNet {
  Simulator sim;
  FlowTable flows;
  std::unique_ptr<Host> server;
  std::unique_ptr<Host> client;
  std::unique_ptr<Link> fwd;   // server -> client (response data)
  std::unique_ptr<Link> rev;   // client -> server (requests, ACKs)
  std::unique_ptr<LambdaHandler> rev_mangler;

  explicit ReqNet(TimeDelta rtt = TimeDelta::Millis(60),
                  std::function<bool(const Packet&)> drop_reverse = nullptr) {
    server = std::make_unique<Host>(&sim, MakeAddress(1, 1), nullptr);
    client = std::make_unique<Host>(&sim, MakeAddress(2, 1), nullptr);
    fwd = std::make_unique<Link>(&sim, "fwd", Rate::Mbps(96), rtt / 2,
                                 std::make_unique<DropTailFifo>(1 << 22), client.get());
    rev = std::make_unique<Link>(&sim, "rev", Rate::Mbps(96), rtt / 2,
                                 std::make_unique<DropTailFifo>(1 << 22), server.get());
    server->set_egress(fwd.get());
    if (drop_reverse) {
      rev_mangler = std::make_unique<LambdaHandler>([this, drop_reverse](Packet p) {
        if (!drop_reverse(p)) {
          rev->HandlePacket(std::move(p));
        }
      });
      client->set_egress(rev_mangler.get());
    } else {
      client->set_egress(rev.get());
    }
  }

  void RunFor(double seconds) {
    sim.RunUntil(TimePoint::Zero() + TimeDelta::SecondsF(seconds));
  }
};

TEST(RequestResponseTest, FctIncludesTheRequestLeg) {
  ReqNet net(TimeDelta::Millis(60));
  FctRecorder fct;
  IssueSingleRequest(&net.sim, &net.flows, net.server.get(), net.client.get(), 5'000,
                     HostCcType::kCubic, &fct);
  net.RunFor(5);
  ASSERT_EQ(fct.completed(), 1u);
  // One full RTT minimum: 30 ms for the request, 30 ms + serialization for
  // the response.
  EXPECT_GE(fct.Fcts().Median() * 1000, 60.0);
  EXPECT_LE(fct.Fcts().Median() * 1000, 120.0);
}

TEST(RequestResponseTest, LostRequestIsRetried) {
  int dropped = 0;
  ReqNet net(TimeDelta::Millis(40), [&](const Packet& p) {
    // Drop the first two request transmissions (small data packets heading to
    // the server).
    if (p.type == PacketType::kData && p.size_bytes == kRequestBytes && dropped < 2) {
      ++dropped;
      return true;
    }
    return false;
  });
  FctRecorder fct;
  IssueSingleRequest(&net.sim, &net.flows, net.server.get(), net.client.get(), 3'000,
                     HostCcType::kCubic, &fct);
  net.RunFor(10);
  EXPECT_EQ(dropped, 2);
  ASSERT_EQ(fct.completed(), 1u);
  // Two retries at 200 + 400 ms backoff precede the successful exchange.
  EXPECT_GE(fct.Fcts().Median() * 1000, 600.0);
}

TEST(RequestResponseTest, GivesUpAfterMaxAttempts) {
  int dropped = 0;
  ReqNet net(TimeDelta::Millis(40), [&](const Packet& p) {
    if (p.type == PacketType::kData && p.size_bytes == kRequestBytes) {
      ++dropped;
      return true;  // black-hole every request
    }
    return false;
  });
  FctRecorder fct;
  IssueSingleRequest(&net.sim, &net.flows, net.server.get(), net.client.get(), 3'000,
                     HostCcType::kCubic, &fct);
  net.RunFor(120);
  EXPECT_EQ(fct.completed(), 0u);
  EXPECT_LE(dropped, 15) << "retries must stop after the attempt cap";
  EXPECT_GE(dropped, 10);
}

TEST(RequestResponseTest, DuplicateRequestStartsOneResponse) {
  // Deliver the request twice (e.g. a spurious retry racing the original);
  // the server must start exactly one response flow.
  ReqNet net(TimeDelta::Millis(200));  // slow path so the retry fires
  FctRecorder fct;
  IssueSingleRequest(&net.sim, &net.flows, net.server.get(), net.client.get(), 20'000,
                     HostCcType::kCubic, &fct);
  net.RunFor(10);
  EXPECT_EQ(fct.completed(), 1u);
  EXPECT_EQ(fct.total(), 1u);
}

TEST(RequestResponseTest, ManyConcurrentRequestsAllComplete) {
  ReqNet net;
  FctRecorder fct;
  for (int i = 0; i < 50; ++i) {
    IssueSingleRequest(&net.sim, &net.flows, net.server.get(), net.client.get(),
                       2'000 + i * 997, HostCcType::kCubic, &fct);
  }
  net.RunFor(30);
  EXPECT_EQ(fct.completed(), 50u);
}

}  // namespace
}  // namespace bundler
