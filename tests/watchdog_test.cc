// Sendbox feedback watchdog (src/bundler/sendbox.h Config::watchdog): the
// control-loop survival state machine. A FaultInjector with a feedback-only
// blackout window sits on the dumbbell's reverse path, and the tests walk the
// documented lifecycle off the sendbox's watchdog_log(): staleness past
// `watchdog_timeout` degrades (shaper opened to max_rate, mode machinery
// frozen), re-probes back off exponentially from `watchdog_probe_initial`,
// and the first fresh feedback after the outage re-syncs immediately and
// hands the rate back to the live controller.
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "src/app/workload.h"
#include "src/net/fault_injector.h"
#include "src/topo/dumbbell.h"

namespace bundler {
namespace {

using WdEvent = Sendbox::WatchdogEvent;

TimePoint Sec(double s) { return TimePoint::Zero() + TimeDelta::SecondsF(s); }

constexpr double kBlackoutStart = 5.0;
constexpr double kBlackoutEnd = 10.0;

struct WatchdogRun {
  Simulator sim;
  DumbbellConfig cfg;
  std::unique_ptr<Dumbbell> net;
  std::unique_ptr<FaultInjector> inj;

  explicit WatchdogRun(bool watchdog, double blackout_start = kBlackoutStart,
                       double blackout_end = kBlackoutEnd) {
    cfg.bottleneck_rate = Rate::Mbps(48);
    cfg.rtt = TimeDelta::Millis(40);
    cfg.sendbox.watchdog = watchdog;
    cfg.sendbox.warm_restart = watchdog;
    net = std::make_unique<Dumbbell>(&sim, cfg);

    FaultProfileSpec spec;
    spec.target = FaultTarget::kFeedbackOnly;
    spec.blackouts = {{TimeDelta::SecondsF(blackout_start),
                       TimeDelta::SecondsF(blackout_end)}};
    ValidateFaultProfile(spec, "watchdog_test");
    inj = std::make_unique<FaultInjector>(&sim, "reverse", spec,
                                          net->reverse_path());
    net->receivebox()->set_reverse(inj.get());

    StartBulkFlows(&sim, net->flows(), net->server(), net->client(), 4,
                   HostCcType::kCubic, TimePoint::Zero());
  }

  std::vector<std::pair<TimePoint, WdEvent>> Events(WdEvent kind) const {
    std::vector<std::pair<TimePoint, WdEvent>> out;
    for (const auto& e : net->sendbox()->watchdog_log()) {
      if (e.second == kind) {
        out.push_back(e);
      }
    }
    return out;
  }
};

TEST(WatchdogTest, StaleFeedbackDegradesAndOpensShaper) {
  WatchdogRun r(/*watchdog=*/true);
  // Stop just inside the blackout, after the timeout has elapsed.
  r.sim.RunUntil(Sec(7.0));
  auto degrades = r.Events(WdEvent::kDegrade);
  ASSERT_EQ(degrades.size(), 1u);
  // Degrade fires on the first control tick after `watchdog_timeout` (500 ms)
  // of staleness; one tick of quantization slack.
  const double t = (degrades[0].first - TimePoint::Zero()).ToSeconds();
  EXPECT_GE(t, kBlackoutStart + 0.5);
  EXPECT_LE(t, kBlackoutStart + 0.6);
  // Graceful degradation == status quo: the shaper is wide open.
  EXPECT_TRUE(r.net->sendbox()->watchdog_degraded());
  EXPECT_EQ(r.net->sendbox()->current_rate(), r.cfg.sendbox.max_rate);
  EXPECT_TRUE(r.Events(WdEvent::kResync).empty());
}

TEST(WatchdogTest, ProbesBackOffExponentially) {
  WatchdogRun r(/*watchdog=*/true);
  r.sim.RunUntil(Sec(kBlackoutEnd));
  auto probes = r.Events(WdEvent::kProbe);
  // Degrade at ~5.51 s, probes at +250 ms then doubling gaps: ~5.76, 6.26,
  // 7.26, 9.26 s; the next (13.26 s) falls outside the blackout.
  ASSERT_EQ(probes.size(), 4u);
  double prev_gap = 0;
  TimePoint prev = r.Events(WdEvent::kDegrade)[0].first;
  for (const auto& [at, ev] : probes) {
    const double gap = (at - prev).ToSeconds();
    if (prev_gap > 0) {
      // Each inter-probe gap doubles (10 ms tick quantization slack).
      EXPECT_NEAR(gap, 2 * prev_gap, 0.03);
    } else {
      EXPECT_NEAR(gap, 0.25, 0.02);
    }
    prev_gap = gap;
    prev = at;
  }
}

TEST(WatchdogTest, ResyncsWithinOneEpochAndRestoresControl) {
  WatchdogRun r(/*watchdog=*/true);
  r.sim.RunUntil(Sec(15.0));
  auto resyncs = r.Events(WdEvent::kResync);
  ASSERT_EQ(resyncs.size(), 1u);
  // The first matched feedback after the outage ends the degradation: within
  // one epoch (~RTT) plus a control tick of the blackout lifting.
  const double t = (resyncs[0].first - TimePoint::Zero()).ToSeconds();
  EXPECT_GE(t, kBlackoutEnd);
  EXPECT_LE(t, kBlackoutEnd + 0.2);
  EXPECT_FALSE(r.net->sendbox()->watchdog_degraded());
  // Control re-engaged: the live controller shapes near the bottleneck rate
  // again instead of the wide-open degraded rate.
  EXPECT_LT(r.net->sendbox()->current_rate().bps(),
            r.cfg.sendbox.max_rate.bps() / 2);
  EXPECT_EQ(r.Events(WdEvent::kDegrade).size(), 1u);
}

TEST(WatchdogTest, NeverDegradesBeforeTheLoopFirstCloses) {
  // Feedback dead from t=0: the loop never closed, so staleness is startup,
  // not an outage — the endhost stack owns that regime (§4.5 fallback).
  WatchdogRun r(/*watchdog=*/true, 0.0, 60.0);
  r.sim.RunUntil(Sec(20.0));
  EXPECT_TRUE(r.net->sendbox()->watchdog_log().empty());
  EXPECT_FALSE(r.net->sendbox()->watchdog_degraded());
}

TEST(WatchdogTest, UncontrollableDelayDegradesOutOfDelayControl) {
  // The asym_reverse collapse in miniature: the reverse path narrows and two
  // bulk flows keep its queue standing, so every feedback epoch reports a
  // loop RTT inflated by hundreds of ms of *reverse* queueing. Feedback
  // never goes stale — it just measures a delay the shaper cannot drain —
  // and delay control would strangle the bundle indefinitely. The contract
  // trigger must degrade instead.
  Simulator sim;
  DumbbellConfig cfg;
  cfg.bottleneck_rate = Rate::Mbps(48);
  cfg.rtt = TimeDelta::Millis(40);
  cfg.reverse_rate = Rate::Mbps(4);
  // Provider-style capped queue: the reverse delay saturates around 256 ms
  // instead of growing without bound, so feedback keeps arriving (late)
  // rather than effectively stopping — the delay cause must stick, not
  // promote to staleness.
  cfg.reverse_buffer_bytes = 128 * 1024;
  cfg.sendbox.watchdog = true;
  cfg.sendbox.warm_restart = true;
  Dumbbell net(&sim, cfg);
  StartBulkFlows(&sim, net.flows(), net.server(), net.client(), 4,
                 HostCcType::kCubic, TimePoint::Zero());
  // Let the loop close and min_rtt settle on the clean path first, then
  // congest the reverse direction.
  StartBulkFlows(&sim, net.flows(), net.client(), net.server(), 2,
                 HostCcType::kCubic, Sec(2.0));
  sim.RunUntil(Sec(15.0));

  std::vector<std::pair<TimePoint, Sendbox::WatchdogEvent>> degrades;
  for (const auto& e : net.sendbox()->watchdog_log()) {
    if (e.second == WdEvent::kDegrade) {
      degrades.push_back(e);
    }
  }
  ASSERT_GE(degrades.size(), 1u);
  // The violation clock needs `watchdog_timeout` of unbroken excess, so the
  // earliest possible degrade is 2.5 s; the reverse queue takes a moment to
  // stand, so allow a few seconds of slow-start slack.
  const double t = (degrades[0].first - TimePoint::Zero()).ToSeconds();
  EXPECT_GE(t, 2.5);
  EXPECT_LE(t, 8.0);
  // Still degraded at the end — the reverse congestion never clears — with
  // the delay cause recorded and the shaper wide open.
  EXPECT_TRUE(net.sendbox()->watchdog_degraded());
  EXPECT_EQ(net.sendbox()->watchdog_cause(), Sendbox::WatchdogCause::kDelay);
  EXPECT_EQ(net.sendbox()->current_rate(), cfg.sendbox.max_rate);
}

TEST(WatchdogTest, OffByDefaultRecordsNothing) {
  WatchdogRun r(/*watchdog=*/false);
  r.sim.RunUntil(Sec(12.0));
  EXPECT_TRUE(r.net->sendbox()->watchdog_log().empty());
  EXPECT_FALSE(r.net->sendbox()->watchdog_degraded());
}

}  // namespace
}  // namespace bundler
