// The allocation-free SACK scoreboard must be observationally identical to
// the std::set/std::map scoreboard it replaced (fig09/fig10/fig13 aggregates
// are pinned byte-for-byte on it). RefBoard below *is* the old
// representation — two ordered sets plus a hole->marker map, with the exact
// erase loops tcp_flow.cc used — and the test drives both through thousands
// of randomized drop/reorder/dup-ACK patterns expressed as the sender's
// actual operation mix (send, SACK-with-hole-reveal, hole retransmission,
// cumulative ACK, RTO, recovery entry/exit), comparing the full per-segment
// state after every step. Same style as the event-engine reference-model
// mirror in tests/sim_test.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "src/transport/sack_scoreboard.h"
#include "src/util/random.h"

namespace bundler {
namespace {

using SegState = SackScoreboard::SegState;

// The pre-rewrite scoreboard representation, verbatim semantics.
struct RefBoard {
  int64_t base = 0;  // cum_acked_
  int64_t end = 0;   // next_seq_
  std::set<int64_t> sacked;
  std::set<int64_t> lost;
  std::map<int64_t, int64_t> retx;  // hole -> next_seq_ at retransmit time

  void ExtendTo(int64_t new_end) { end = new_end; }

  void AdvanceTo(int64_t new_base) {
    base = new_base;
    if (end < base) {
      end = base;
    }
    while (!sacked.empty() && *sacked.begin() < base) {
      sacked.erase(sacked.begin());
    }
    while (!retx.empty() && retx.begin()->first < base) {
      retx.erase(retx.begin());
    }
    while (!lost.empty() && *lost.begin() < base) {
      lost.erase(lost.begin());
    }
  }

  // The dup-ACK SACK-processing block of the original TcpSender::OnAck.
  void Sack(int64_t s) {
    if (s <= base || sacked.contains(s)) {
      return;
    }
    int64_t reveal_from = sacked.empty() ? base : *sacked.rbegin() + 1;
    if (s >= reveal_from) {
      for (int64_t q = reveal_from; q < s; ++q) {
        if (!retx.contains(q)) {
          lost.insert(q);
        }
      }
      sacked.insert(s);
      for (auto it = retx.begin(); it != retx.end();) {
        if (it->second + 3 <= s) {
          lost.insert(it->first);
          it = retx.erase(it);
        } else {
          ++it;
        }
      }
    } else {
      sacked.insert(s);
      lost.erase(s);
      retx.erase(s);
    }
  }

  // MaybeRetransmitHoles body: pop the lowest hole, record the marker.
  void RetransmitFirstHole(int64_t marker) {
    int64_t hole = *lost.begin();
    lost.erase(lost.begin());
    retx[hole] = marker;
  }

  // OnRtoTimer: every outstanding retransmission is presumed lost again,
  // then the left window edge is retransmitted.
  void Rto() {
    for (const auto& [hole, marker] : retx) {
      lost.insert(hole);
    }
    retx.clear();
    lost.erase(base);
    retx[base] = end;
  }

  void EnterFastRecovery() { retx.clear(); }

  void ExitRecovery() {
    retx.clear();
    lost.clear();
  }

  SegState StateOf(int64_t seq) const {
    if (sacked.contains(seq)) {
      return SegState::kSacked;
    }
    if (lost.contains(seq)) {
      return SegState::kLostPending;
    }
    if (retx.contains(seq)) {
      return SegState::kRetxOutstanding;
    }
    return SegState::kInFlight;
  }
};

// Drives the same logical operation on both boards.
struct Mirror {
  RefBoard ref;
  SackScoreboard sb;

  void ExtendTo(int64_t e) {
    ref.ExtendTo(e);
    sb.ExtendTo(e);
  }
  void AdvanceTo(int64_t b) {
    ref.AdvanceTo(b);
    sb.AdvanceTo(b);
  }
  void Sack(int64_t s) {
    ref.Sack(s);
    // The new-scoreboard side of TcpSender::OnAck, verbatim.
    if (s > sb.base() && !sb.IsSacked(s)) {
      int64_t reveal_from = sb.HasSacked() ? sb.HighestSacked() + 1 : sb.base();
      if (s >= reveal_from) {
        for (int64_t q = reveal_from; q < s; ++q) {
          if (sb.StateOf(q) != SegState::kRetxOutstanding) {
            sb.MarkLost(q);
          }
        }
        sb.MarkSacked(s);
        sb.MoveStaleRetxToLost(s);
      } else {
        sb.MarkSacked(s);
      }
    }
  }
  void RetransmitFirstHole(int64_t marker) {
    ref.RetransmitFirstHole(marker);
    int64_t hole = sb.FirstLost();
    sb.MarkRetx(hole, marker);
  }
  void Rto() {
    ref.Rto();
    sb.MoveAllRetxToLost();
    sb.MarkRetx(sb.base(), sb.end());
  }
  void EnterFastRecovery() {
    ref.EnterFastRecovery();
    sb.ClearRetx();
  }
  void ExitRecovery() {
    ref.ExitRecovery();
    sb.ClearLostAndRetx();
  }

  void ExpectEqual(const char* what, uint64_t step) const {
    ASSERT_EQ(sb.base(), ref.base) << what << " step " << step;
    ASSERT_EQ(sb.end(), ref.end) << what << " step " << step;
    ASSERT_EQ(sb.sacked_count(), static_cast<int64_t>(ref.sacked.size()))
        << what << " step " << step;
    ASSERT_EQ(sb.lost_count(), static_cast<int64_t>(ref.lost.size()))
        << what << " step " << step;
    ASSERT_EQ(sb.retx_count(), static_cast<int64_t>(ref.retx.size()))
        << what << " step " << step;
    ASSERT_EQ(sb.HasSacked(), !ref.sacked.empty()) << what << " step " << step;
    if (!ref.sacked.empty()) {
      ASSERT_EQ(sb.HighestSacked(), *ref.sacked.rbegin()) << what << " step " << step;
    }
    for (int64_t s = ref.base; s < ref.end; ++s) {
      ASSERT_EQ(sb.StateOf(s), ref.StateOf(s))
          << what << " step " << step << " seq " << s;
      if (ref.retx.contains(s)) {
        ASSERT_EQ(sb.RetxMarker(s), ref.retx.at(s))
            << what << " step " << step << " seq " << s;
      }
    }
  }
};

TEST(SackScoreboardTest, MatchesSetModelUnderRandomizedLossPatterns) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    Mirror m;
    Rng rng(seed);
    m.ExtendTo(4);  // a few segments in flight before anything happens
    for (uint64_t step = 0; step < 4000; ++step) {
      double roll = rng.NextDouble();
      int64_t window = m.ref.end - m.ref.base;
      if (roll < 0.30 || window == 0) {
        // Send 1..8 new segments.
        m.ExtendTo(m.ref.end + 1 + static_cast<int64_t>(rng.NextU64() % 8));
        m.ExpectEqual("extend", step);
      } else if (roll < 0.60) {
        // Dup-ACK: SACK a random in-window seq strictly below next_seq_, as a
        // real echoed data seq always is (drop/reorder patterns reveal holes
        // below it; duplicate SACKs of the same seq are no-ops).
        if (window >= 2) {
          int64_t s = m.ref.base + 1 + static_cast<int64_t>(rng.NextU64() % (window - 1));
          m.Sack(s);
          m.ExpectEqual("sack", step);
        }
      } else if (roll < 0.75) {
        // Retransmit up to 3 of the lowest pending holes.
        for (int k = 0; k < 3 && !m.ref.lost.empty(); ++k) {
          m.RetransmitFirstHole(m.ref.end);
          m.ExpectEqual("retransmit-hole", step);
        }
      } else if (roll < 0.92) {
        // Cumulative ACK advancing into the window (sometimes past SACKed
        // runs, which is exactly what repairing a hole does). The cumulative
        // point is the first seq the receiver has NOT delivered, so it can
        // never land on a SACKed seq — skip past those, as reality does.
        int64_t adv = 1 + static_cast<int64_t>(rng.NextU64() % (window + 2));
        int64_t target = m.ref.base + std::min<int64_t>(adv, window);
        while (m.ref.sacked.contains(target)) {
          ++target;
        }
        m.AdvanceTo(target);
        m.ExpectEqual("cum-ack", step);
      } else if (roll < 0.96) {
        m.Rto();
        m.ExpectEqual("rto", step);
      } else if (roll < 0.98) {
        m.EnterFastRecovery();
        m.ExpectEqual("enter-recovery", step);
      } else {
        m.ExitRecovery();
        m.ExpectEqual("exit-recovery", step);
      }
      if (::testing::Test::HasFatalFailure()) {
        return;
      }
    }
  }
}

TEST(SackScoreboardTest, PipeAccountingMatchesSetSizes) {
  // InflightPkts() is (end-base) - sacked - lost; spot-check the counters the
  // sender reads on every ACK against the reference set sizes.
  Mirror m;
  Rng rng(99);
  m.ExtendTo(64);
  for (int step = 0; step < 500; ++step) {
    int64_t window = m.ref.end - m.ref.base;
    if (window < 2) {
      m.ExtendTo(m.ref.end + 8);
      window = m.ref.end - m.ref.base;
    }
    int64_t s = m.ref.base + 1 + static_cast<int64_t>(rng.NextU64() % (window - 1));
    m.Sack(s);
    if (!m.ref.lost.empty() && rng.NextDouble() < 0.5) {
      m.RetransmitFirstHole(m.ref.end);
    }
    if (rng.NextDouble() < 0.2) {
      m.ExtendTo(m.ref.end + 4);
    }
    int64_t ref_pipe = (m.ref.end - m.ref.base) - static_cast<int64_t>(m.ref.sacked.size()) -
                       static_cast<int64_t>(m.ref.lost.size());
    int64_t sb_pipe = (m.sb.end() - m.sb.base()) - m.sb.sacked_count() - m.sb.lost_count();
    ASSERT_EQ(sb_pipe, ref_pipe) << "step " << step;
  }
}

TEST(SackScoreboardTest, RtoAtWindowEdgeExtendsWindow) {
  // The RTO path can nominally mark the left edge retransmitted when nothing
  // is outstanding (cum_acked_ == next_seq_ on a backlogged flow); the
  // scoreboard absorbs it by growing the window one slot.
  SackScoreboard sb;
  sb.ExtendTo(5);
  sb.AdvanceTo(5);
  ASSERT_EQ(sb.base(), 5);
  ASSERT_EQ(sb.end(), 5);
  sb.MarkRetx(5, 5);
  EXPECT_EQ(sb.end(), 6);
  EXPECT_EQ(sb.retx_count(), 1);
  EXPECT_EQ(sb.StateOf(5), SegState::kRetxOutstanding);
  EXPECT_EQ(sb.RetxMarker(5), 5);
}

TEST(SackScoreboardTest, WindowGrowthPreservesState) {
  // Force several ring reallocation cycles with live state in the window.
  SackScoreboard sb;
  RefBoard ref;
  Rng rng(7);
  for (int round = 0; round < 6; ++round) {
    int64_t new_end = ref.end + 300;  // well past the doubling boundary
    sb.ExtendTo(new_end);
    ref.ExtendTo(new_end);
    for (int k = 0; k < 40; ++k) {
      int64_t window = ref.end - ref.base;
      int64_t s = ref.base + 1 + static_cast<int64_t>(rng.NextU64() % (window - 1));
      ref.Sack(s);
      if (s > sb.base() && !sb.IsSacked(s)) {
        int64_t reveal_from = sb.HasSacked() ? sb.HighestSacked() + 1 : sb.base();
        if (s >= reveal_from) {
          for (int64_t q = reveal_from; q < s; ++q) {
            if (sb.StateOf(q) != SegState::kRetxOutstanding) {
              sb.MarkLost(q);
            }
          }
          sb.MarkSacked(s);
          sb.MoveStaleRetxToLost(s);
        } else {
          sb.MarkSacked(s);
        }
      }
    }
    int64_t adv = ref.base + 100;
    ref.AdvanceTo(adv);
    sb.AdvanceTo(adv);
    for (int64_t s = ref.base; s < ref.end; ++s) {
      ASSERT_EQ(sb.StateOf(s), ref.StateOf(s)) << "round " << round << " seq " << s;
    }
  }
}

}  // namespace
}  // namespace bundler
