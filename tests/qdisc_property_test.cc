// Property tests over every queue discipline: conservation (every enqueued
// packet is either delivered or counted as a drop), non-negative accounting,
// empty/limit behavior, and work conservation. Parameterized so each qdisc
// implementation faces the same invariants. The ring-backed fq_codel and
// strict-prio rewrites are additionally mirrored step-for-step against
// reference implementations that keep the pre-rewrite std::deque/std::list
// storage, pinning byte-identical service order (same DRR rotation, same
// CoDel drop decisions, same overflow victims).
#include <gtest/gtest.h>

#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <string>

#include "src/qdisc/codel.h"
#include "src/qdisc/drr.h"
#include "src/qdisc/fifo.h"
#include "src/qdisc/fq_codel.h"
#include "src/qdisc/prio.h"
#include "src/qdisc/sfq.h"
#include "src/util/fnv.h"
#include "src/util/random.h"

namespace bundler {
namespace {

using QdiscFactory = std::function<std::unique_ptr<Qdisc>()>;

struct QdiscCase {
  std::string name;
  QdiscFactory make;
};

std::vector<QdiscCase> AllQdiscs() {
  return {
      {"droptail", [] { return std::make_unique<DropTailFifo>(int64_t{256} * kMtuBytes); }},
      {"sfq",
       [] {
         Sfq::Config cfg;
         cfg.limit_packets = 256;
         return std::make_unique<Sfq>(cfg);
       }},
      {"drr",
       [] {
         Drr::Config cfg;
         cfg.limit_bytes = int64_t{256} * kMtuBytes;
         return std::make_unique<Drr>(cfg);
       }},
      {"codel", [] { return std::make_unique<Codel>(int64_t{256} * kMtuBytes, CodelParams()); }},
      {"fq_codel",
       [] {
         FqCodel::Config cfg;
         cfg.limit_packets = 256;
         return std::make_unique<FqCodel>(cfg);
       }},
      {"strict_prio", [] { return std::make_unique<StrictPrio>(3, int64_t{86} * kMtuBytes); }},
  };
}

class QdiscPropertyTest : public ::testing::TestWithParam<QdiscCase> {};

Packet RandomPacket(Rng& rng, uint64_t seq) {
  Packet p;
  p.id = seq;
  p.flow_id = rng.NextU64() % 16;
  p.key.src = MakeAddress(1, static_cast<uint16_t>(p.flow_id));
  p.key.dst = MakeAddress(2, 1);
  p.key.src_port = static_cast<uint16_t>(1000 + p.flow_id);
  p.key.dst_port = static_cast<uint16_t>(2000 + p.flow_id * 3);
  p.size_bytes = 64 + static_cast<uint32_t>(rng.NextU64() % (kMtuBytes - 64));
  p.priority = static_cast<uint8_t>(p.flow_id % 3);
  p.seq = static_cast<int64_t>(seq);
  return p;
}

TEST_P(QdiscPropertyTest, ConservationUnderRandomChurn) {
  auto q = GetParam().make();
  Rng rng(7);
  TimePoint now;
  uint64_t enqueued = 0, delivered = 0, rejected = 0;
  for (int step = 0; step < 20000; ++step) {
    now += TimeDelta::Micros(100);
    if (rng.NextDouble() < 0.55) {
      Packet p = RandomPacket(rng, enqueued);
      p.queue_enter = now;
      ++enqueued;
      if (!q->Enqueue(std::move(p), now)) {
        ++rejected;
      }
    } else {
      if (q->Dequeue(now).has_value()) {
        ++delivered;
      }
    }
  }
  // Drain the remainder. Dequeue-time droppers (CoDel) may eat packets, so
  // drain until the qdisc reports empty.
  while (!q->Empty()) {
    now += TimeDelta::Millis(1);
    if (q->Dequeue(now).has_value()) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered + q->drops(), enqueued)
      << GetParam().name << ": every packet must be delivered or counted dropped";
  EXPECT_GE(q->drops(), rejected);
  EXPECT_EQ(q->bytes(), 0);
  EXPECT_EQ(q->packets(), 0);
}

TEST_P(QdiscPropertyTest, AccountingNeverNegative) {
  auto q = GetParam().make();
  Rng rng(11);
  TimePoint now;
  for (int step = 0; step < 5000; ++step) {
    now += TimeDelta::Micros(50);
    if (rng.NextDouble() < 0.5) {
      Packet p = RandomPacket(rng, static_cast<uint64_t>(step));
      p.queue_enter = now;
      q->Enqueue(std::move(p), now);
    } else {
      q->Dequeue(now);
    }
    ASSERT_GE(q->bytes(), 0) << GetParam().name;
    ASSERT_GE(q->packets(), 0) << GetParam().name;
    ASSERT_EQ(q->packets() == 0, q->Empty()) << GetParam().name;
  }
}

TEST_P(QdiscPropertyTest, DequeueFromEmptyIsSafe) {
  auto q = GetParam().make();
  TimePoint now;
  EXPECT_FALSE(q->Dequeue(now).has_value());
  EXPECT_EQ(q->Peek(), nullptr);
  EXPECT_TRUE(q->Empty());
}

TEST_P(QdiscPropertyTest, PeekMatchesNextDeliveredUnlessAqmDrops) {
  auto q = GetParam().make();
  Rng rng(13);
  TimePoint now;
  for (int i = 0; i < 50; ++i) {
    Packet p = RandomPacket(rng, static_cast<uint64_t>(i));
    p.queue_enter = now;
    q->Enqueue(std::move(p), now);
  }
  // Fair-queueing disciplines may rotate to another flow between Peek and
  // Dequeue (deficit bookkeeping), so the exact-match property only holds for
  // single-queue qdiscs; for the rest Peek must still point at a live packet.
  bool single_queue = GetParam().name == "droptail" || GetParam().name == "codel" ||
                      GetParam().name == "strict_prio";
  while (!q->Empty()) {
    const Packet* head = q->Peek();
    ASSERT_NE(head, nullptr) << GetParam().name;
    uint64_t head_id = head->id;
    auto out = q->Dequeue(now);  // no sojourn -> CoDel will not drop
    ASSERT_TRUE(out.has_value()) << GetParam().name;
    if (single_queue) {
      EXPECT_EQ(out->id, head_id) << GetParam().name;
    }
  }
}

TEST_P(QdiscPropertyTest, RespectsConfiguredLimit) {
  auto q = GetParam().make();
  TimePoint now;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    Packet p = RandomPacket(rng, static_cast<uint64_t>(i));
    p.size_bytes = kMtuBytes;
    p.queue_enter = now;
    q->Enqueue(std::move(p), now);
  }
  EXPECT_GT(q->drops(), 0u) << GetParam().name;
  EXPECT_LE(q->packets(), 260) << GetParam().name;  // limit ~256 + slack
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscPropertyTest,
                         ::testing::ValuesIn(AllQdiscs()),
                         [](const ::testing::TestParamInfo<QdiscCase>& tpi) {
                           return tpi.param.name;
                         });

// ---------------------------------------------------------------------------
// Service-order byte-identity: reference implementations with the
// pre-rewrite std::deque/std::list storage, mirrored against the ring-backed
// qdiscs step for step.

// FqCodel exactly as it stood before the ring sweep (deque buckets, list
// service order, lazily allocated per-bucket CodelState).
class RefFqCodel {
 public:
  explicit RefFqCodel(const FqCodel::Config& config)
      : config_(config), buckets_(config.num_buckets) {}

  bool Enqueue(Packet pkt, TimePoint now) {
    (void)now;
    size_t idx = BucketFor(pkt);
    Bucket& b = buckets_[idx];
    if (b.codel == nullptr) {
      b.codel = std::make_unique<CodelState>(config_.codel);
    }
    bytes_ += pkt.size_bytes;
    b.bytes += pkt.size_bytes;
    b.queue.push_back(std::move(pkt));
    ++packets_;
    if (b.list_state == Bucket::ListState::kNone) {
      b.list_state = Bucket::ListState::kNew;
      b.deficit = config_.quantum_bytes;
      new_flows_.push_back(idx);
    }
    if (packets_ > config_.limit_packets) {
      DropFromFattest();
      return false;
    }
    return true;
  }

  std::optional<Packet> Dequeue(TimePoint now) {
    std::optional<Packet> pkt = DequeueFromList(new_flows_, true, now);
    if (pkt.has_value()) {
      return pkt;
    }
    return DequeueFromList(old_flows_, false, now);
  }

  uint64_t drops() const { return drops_; }
  int64_t bytes() const { return bytes_; }
  int64_t packets() const { return packets_; }

 private:
  struct Bucket {
    std::deque<Packet> queue;
    std::unique_ptr<CodelState> codel;
    int64_t bytes = 0;
    int64_t deficit = 0;
    enum class ListState { kNone, kNew, kOld } list_state = ListState::kNone;
  };

  // Same hash as the real implementation (FqCodel::BucketFor).
  size_t BucketFor(const Packet& pkt) const {
    const uint64_t fields[] = {config_.perturbation,
                               pkt.key.src,
                               pkt.key.dst,
                               static_cast<uint64_t>(pkt.key.src_port),
                               static_cast<uint64_t>(pkt.key.dst_port),
                               static_cast<uint64_t>(pkt.key.protocol)};
    return Mix64(Fnv1a64Combine(fields, 6)) % config_.num_buckets;
  }

  void DropFromFattest() {
    size_t fattest = 0;
    int64_t fattest_bytes = -1;
    for (const auto& list : {new_flows_, old_flows_}) {
      for (size_t idx : list) {
        if (buckets_[idx].bytes > fattest_bytes) {
          fattest_bytes = buckets_[idx].bytes;
          fattest = idx;
        }
      }
    }
    Bucket& b = buckets_[fattest];
    const Packet& victim = b.queue.front();
    b.bytes -= victim.size_bytes;
    bytes_ -= victim.size_bytes;
    b.queue.pop_front();
    --packets_;
    ++drops_;
  }

  std::optional<Packet> DequeueFromList(std::list<size_t>& list, bool is_new_list,
                                        TimePoint now) {
    while (!list.empty()) {
      size_t idx = list.front();
      Bucket& b = buckets_[idx];
      if (b.deficit <= 0) {
        b.deficit += config_.quantum_bytes;
        list.pop_front();
        b.list_state = Bucket::ListState::kOld;
        old_flows_.push_back(idx);
        continue;
      }
      if (b.queue.empty()) {
        list.pop_front();
        if (is_new_list) {
          b.list_state = Bucket::ListState::kOld;
          old_flows_.push_back(idx);
        } else {
          b.list_state = Bucket::ListState::kNone;
        }
        continue;
      }
      Packet pkt = std::move(b.queue.front());
      b.queue.pop_front();
      b.bytes -= pkt.size_bytes;
      bytes_ -= pkt.size_bytes;
      --packets_;
      TimeDelta sojourn = now - pkt.queue_enter;
      if (b.codel->ShouldDrop(sojourn, now)) {
        ++drops_;
        continue;
      }
      b.deficit -= pkt.size_bytes;
      if (b.deficit <= 0) {
        b.deficit += config_.quantum_bytes;
        list.pop_front();
        b.list_state = Bucket::ListState::kOld;
        old_flows_.push_back(idx);
      }
      return pkt;
    }
    return std::nullopt;
  }

  FqCodel::Config config_;
  std::vector<Bucket> buckets_;
  std::list<size_t> new_flows_;
  std::list<size_t> old_flows_;
  int64_t bytes_ = 0;
  int64_t packets_ = 0;
  uint64_t drops_ = 0;
};

// StrictPrio as it stood before the ring sweep: per-band std::deque.
class RefStrictPrio {
 public:
  RefStrictPrio(size_t num_bands, int64_t limit_bytes_per_band)
      : bands_(num_bands), limit_bytes_per_band_(limit_bytes_per_band) {}

  bool Enqueue(Packet pkt, TimePoint now) {
    (void)now;
    size_t band = pkt.priority;
    if (band >= bands_.size()) {
      band = bands_.size() - 1;
    }
    Band& b = bands_[band];
    if (b.bytes + pkt.size_bytes > limit_bytes_per_band_) {
      ++drops_;
      return false;
    }
    b.bytes += pkt.size_bytes;
    b.queue.push_back(std::move(pkt));
    return true;
  }

  std::optional<Packet> Dequeue(TimePoint now) {
    (void)now;
    for (Band& b : bands_) {
      if (!b.queue.empty()) {
        Packet pkt = std::move(b.queue.front());
        b.queue.pop_front();
        b.bytes -= pkt.size_bytes;
        return pkt;
      }
    }
    return std::nullopt;
  }

  uint64_t drops() const { return drops_; }

 private:
  struct Band {
    std::deque<Packet> queue;
    int64_t bytes = 0;
  };
  std::vector<Band> bands_;
  int64_t limit_bytes_per_band_;
  uint64_t drops_ = 0;
};

TEST(QdiscByteIdentityTest, FqCodelMatchesDequeListReference) {
  // Randomized churn with standing queues, so every code path engages:
  // new/old list rotation, deficit refills, CoDel sojourn drops, and
  // overflow drops from the fattest flow. Every dequeue must produce the
  // same packet id and every drop counter must match, step for step.
  FqCodel::Config cfg;
  cfg.limit_packets = 192;
  for (uint64_t seed = 3; seed <= 5; ++seed) {
    FqCodel q(cfg);
    RefFqCodel ref(cfg);
    Rng rng(seed);
    TimePoint now;
    for (int step = 0; step < 30000; ++step) {
      now += TimeDelta::Micros(200);
      if (rng.NextDouble() < 0.55) {
        Packet p = RandomPacket(rng, static_cast<uint64_t>(step));
        p.queue_enter = now;
        Packet clone = p.Clone();
        bool accepted = q.Enqueue(std::move(p), now);
        bool ref_accepted = ref.Enqueue(std::move(clone), now);
        ASSERT_EQ(accepted, ref_accepted) << "seed " << seed << " step " << step;
      } else {
        std::optional<Packet> out = q.Dequeue(now);
        std::optional<Packet> ref_out = ref.Dequeue(now);
        ASSERT_EQ(out.has_value(), ref_out.has_value())
            << "seed " << seed << " step " << step;
        if (out.has_value()) {
          ASSERT_EQ(out->id, ref_out->id) << "seed " << seed << " step " << step;
        }
      }
      ASSERT_EQ(q.drops(), ref.drops()) << "seed " << seed << " step " << step;
      ASSERT_EQ(q.bytes(), ref.bytes()) << "seed " << seed << " step " << step;
      ASSERT_EQ(q.packets(), ref.packets()) << "seed " << seed << " step " << step;
    }
  }
}

TEST(QdiscByteIdentityTest, StrictPrioMatchesDequeReference) {
  for (uint64_t seed = 11; seed <= 13; ++seed) {
    StrictPrio q(3, int64_t{48} * kMtuBytes);
    RefStrictPrio ref(3, int64_t{48} * kMtuBytes);
    Rng rng(seed);
    TimePoint now;
    for (int step = 0; step < 30000; ++step) {
      now += TimeDelta::Micros(100);
      if (rng.NextDouble() < 0.55) {
        Packet p = RandomPacket(rng, static_cast<uint64_t>(step));
        p.queue_enter = now;
        Packet clone = p.Clone();
        bool accepted = q.Enqueue(std::move(p), now);
        bool ref_accepted = ref.Enqueue(std::move(clone), now);
        ASSERT_EQ(accepted, ref_accepted) << "seed " << seed << " step " << step;
      } else {
        std::optional<Packet> out = q.Dequeue(now);
        std::optional<Packet> ref_out = ref.Dequeue(now);
        ASSERT_EQ(out.has_value(), ref_out.has_value())
            << "seed " << seed << " step " << step;
        if (out.has_value()) {
          ASSERT_EQ(out->id, ref_out->id) << "seed " << seed << " step " << step;
        }
      }
      ASSERT_EQ(q.drops(), ref.drops()) << "seed " << seed << " step " << step;
    }
  }
}

}  // namespace
}  // namespace bundler
