// Property tests over every queue discipline: conservation (every enqueued
// packet is either delivered or counted as a drop), non-negative accounting,
// empty/limit behavior, and work conservation. Parameterized so each qdisc
// implementation faces the same invariants.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>

#include "src/qdisc/codel.h"
#include "src/qdisc/drr.h"
#include "src/qdisc/fifo.h"
#include "src/qdisc/fq_codel.h"
#include "src/qdisc/prio.h"
#include "src/qdisc/sfq.h"
#include "src/util/random.h"

namespace bundler {
namespace {

using QdiscFactory = std::function<std::unique_ptr<Qdisc>()>;

struct QdiscCase {
  std::string name;
  QdiscFactory make;
};

std::vector<QdiscCase> AllQdiscs() {
  return {
      {"droptail", [] { return std::make_unique<DropTailFifo>(int64_t{256} * kMtuBytes); }},
      {"sfq",
       [] {
         Sfq::Config cfg;
         cfg.limit_packets = 256;
         return std::make_unique<Sfq>(cfg);
       }},
      {"drr",
       [] {
         Drr::Config cfg;
         cfg.limit_bytes = int64_t{256} * kMtuBytes;
         return std::make_unique<Drr>(cfg);
       }},
      {"codel", [] { return std::make_unique<Codel>(int64_t{256} * kMtuBytes, CodelParams()); }},
      {"fq_codel",
       [] {
         FqCodel::Config cfg;
         cfg.limit_packets = 256;
         return std::make_unique<FqCodel>(cfg);
       }},
      {"strict_prio", [] { return std::make_unique<StrictPrio>(3, int64_t{86} * kMtuBytes); }},
  };
}

class QdiscPropertyTest : public ::testing::TestWithParam<QdiscCase> {};

Packet RandomPacket(Rng& rng, uint64_t seq) {
  Packet p;
  p.id = seq;
  p.flow_id = rng.NextU64() % 16;
  p.key.src = MakeAddress(1, static_cast<uint16_t>(p.flow_id));
  p.key.dst = MakeAddress(2, 1);
  p.key.src_port = static_cast<uint16_t>(1000 + p.flow_id);
  p.key.dst_port = static_cast<uint16_t>(2000 + p.flow_id * 3);
  p.size_bytes = 64 + static_cast<uint32_t>(rng.NextU64() % (kMtuBytes - 64));
  p.priority = static_cast<uint8_t>(p.flow_id % 3);
  p.seq = static_cast<int64_t>(seq);
  return p;
}

TEST_P(QdiscPropertyTest, ConservationUnderRandomChurn) {
  auto q = GetParam().make();
  Rng rng(7);
  TimePoint now;
  uint64_t enqueued = 0, delivered = 0, rejected = 0;
  for (int step = 0; step < 20000; ++step) {
    now += TimeDelta::Micros(100);
    if (rng.NextDouble() < 0.55) {
      Packet p = RandomPacket(rng, enqueued);
      p.queue_enter = now;
      ++enqueued;
      if (!q->Enqueue(std::move(p), now)) {
        ++rejected;
      }
    } else {
      if (q->Dequeue(now).has_value()) {
        ++delivered;
      }
    }
  }
  // Drain the remainder. Dequeue-time droppers (CoDel) may eat packets, so
  // drain until the qdisc reports empty.
  while (!q->Empty()) {
    now += TimeDelta::Millis(1);
    if (q->Dequeue(now).has_value()) {
      ++delivered;
    }
  }
  EXPECT_EQ(delivered + q->drops(), enqueued)
      << GetParam().name << ": every packet must be delivered or counted dropped";
  EXPECT_GE(q->drops(), rejected);
  EXPECT_EQ(q->bytes(), 0);
  EXPECT_EQ(q->packets(), 0);
}

TEST_P(QdiscPropertyTest, AccountingNeverNegative) {
  auto q = GetParam().make();
  Rng rng(11);
  TimePoint now;
  for (int step = 0; step < 5000; ++step) {
    now += TimeDelta::Micros(50);
    if (rng.NextDouble() < 0.5) {
      Packet p = RandomPacket(rng, static_cast<uint64_t>(step));
      p.queue_enter = now;
      q->Enqueue(std::move(p), now);
    } else {
      q->Dequeue(now);
    }
    ASSERT_GE(q->bytes(), 0) << GetParam().name;
    ASSERT_GE(q->packets(), 0) << GetParam().name;
    ASSERT_EQ(q->packets() == 0, q->Empty()) << GetParam().name;
  }
}

TEST_P(QdiscPropertyTest, DequeueFromEmptyIsSafe) {
  auto q = GetParam().make();
  TimePoint now;
  EXPECT_FALSE(q->Dequeue(now).has_value());
  EXPECT_EQ(q->Peek(), nullptr);
  EXPECT_TRUE(q->Empty());
}

TEST_P(QdiscPropertyTest, PeekMatchesNextDeliveredUnlessAqmDrops) {
  auto q = GetParam().make();
  Rng rng(13);
  TimePoint now;
  for (int i = 0; i < 50; ++i) {
    Packet p = RandomPacket(rng, static_cast<uint64_t>(i));
    p.queue_enter = now;
    q->Enqueue(std::move(p), now);
  }
  // Fair-queueing disciplines may rotate to another flow between Peek and
  // Dequeue (deficit bookkeeping), so the exact-match property only holds for
  // single-queue qdiscs; for the rest Peek must still point at a live packet.
  bool single_queue = GetParam().name == "droptail" || GetParam().name == "codel" ||
                      GetParam().name == "strict_prio";
  while (!q->Empty()) {
    const Packet* head = q->Peek();
    ASSERT_NE(head, nullptr) << GetParam().name;
    uint64_t head_id = head->id;
    auto out = q->Dequeue(now);  // no sojourn -> CoDel will not drop
    ASSERT_TRUE(out.has_value()) << GetParam().name;
    if (single_queue) {
      EXPECT_EQ(out->id, head_id) << GetParam().name;
    }
  }
}

TEST_P(QdiscPropertyTest, RespectsConfiguredLimit) {
  auto q = GetParam().make();
  TimePoint now;
  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    Packet p = RandomPacket(rng, static_cast<uint64_t>(i));
    p.size_bytes = kMtuBytes;
    p.queue_enter = now;
    q->Enqueue(std::move(p), now);
  }
  EXPECT_GT(q->drops(), 0u) << GetParam().name;
  EXPECT_LE(q->packets(), 260) << GetParam().name;  // limit ~256 + slack
}

INSTANTIATE_TEST_SUITE_P(AllQdiscs, QdiscPropertyTest,
                         ::testing::ValuesIn(AllQdiscs()),
                         [](const ::testing::TestParamInfo<QdiscCase>& info) {
                           return info.param.name;
                         });

}  // namespace
}  // namespace bundler
