// Unit tests for src/util: time/rate arithmetic, hashing, statistics,
// windowed filters, FFT, time series, random streams.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numbers>
#include <set>
#include <utility>

#include "src/util/fft.h"
#include "src/util/fnv.h"
#include "src/util/interval_set.h"
#include "src/util/random.h"
#include "src/util/rate.h"
#include "src/util/ring_buffer.h"
#include "src/util/stats.h"
#include "src/util/table.h"
#include "src/util/time.h"
#include "src/util/timeseries.h"
#include "src/util/windowed_filter.h"

namespace bundler {
namespace {

TEST(TimeDeltaTest, FactoryAndConversions) {
  EXPECT_EQ(TimeDelta::Millis(5).nanos(), 5'000'000);
  EXPECT_EQ(TimeDelta::Micros(7).nanos(), 7'000);
  EXPECT_EQ(TimeDelta::Seconds(2).nanos(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(TimeDelta::Millis(1500).ToSeconds(), 1.5);
  EXPECT_DOUBLE_EQ(TimeDelta::Micros(1500).ToMillis(), 1.5);
}

TEST(TimeDeltaTest, Arithmetic) {
  TimeDelta a = TimeDelta::Millis(10);
  TimeDelta b = TimeDelta::Millis(4);
  EXPECT_EQ((a + b).ToMillis(), 14.0);
  EXPECT_EQ((a - b).ToMillis(), 6.0);
  EXPECT_EQ((a * 2.5).ToMillis(), 25.0);
  EXPECT_EQ((a / 2).ToMillis(), 5.0);
  EXPECT_DOUBLE_EQ(a / b, 2.5);
  EXPECT_LT(b, a);
  EXPECT_EQ(-a, TimeDelta::Millis(-10));
}

TEST(TimeDeltaTest, InfiniteIsSticky) {
  EXPECT_TRUE(TimeDelta::Infinite().IsInfinite());
  EXPECT_FALSE(TimeDelta::Seconds(100000).IsInfinite());
  EXPECT_EQ(TimeDelta::Infinite().ToString(), "+inf");
}

TEST(TimePointTest, OffsetArithmetic) {
  TimePoint t = TimePoint::Zero() + TimeDelta::Seconds(1);
  EXPECT_EQ(t.nanos(), 1'000'000'000);
  EXPECT_EQ((t + TimeDelta::Millis(500)).ToSeconds(), 1.5);
  EXPECT_EQ((t - TimePoint::Zero()).ToSeconds(), 1.0);
  EXPECT_LT(TimePoint::Zero(), t);
}

TEST(RateTest, ConversionsRoundTrip) {
  Rate r = Rate::Mbps(96);
  EXPECT_DOUBLE_EQ(r.bps(), 96e6);
  EXPECT_DOUBLE_EQ(r.Mbps(), 96.0);
  EXPECT_DOUBLE_EQ(r.BytesPerSecond(), 12e6);
  EXPECT_DOUBLE_EQ(Rate::BytesPerSec(12e6).Mbps(), 96.0);
}

TEST(RateTest, TransmitTime) {
  // 1500 bytes at 96 Mbit/s = 125 us.
  EXPECT_EQ(Rate::Mbps(96).TransmitTime(1500).ToMicros(), 125.0);
  EXPECT_TRUE(Rate::Zero().TransmitTime(1).IsInfinite());
}

TEST(RateTest, FromBytesAndTime) {
  Rate r = Rate::FromBytesAndTime(12'000'000, TimeDelta::Seconds(1));
  EXPECT_DOUBLE_EQ(r.Mbps(), 96.0);
  EXPECT_TRUE(Rate::FromBytesAndTime(100, TimeDelta::Zero()).IsZero());
}

TEST(FnvTest, MatchesReferenceVectors) {
  // Reference FNV-1a 64-bit test vectors.
  const uint8_t empty[] = {0};
  EXPECT_EQ(Fnv1a64(empty, 0), 14695981039346656037ULL);
  const uint8_t a[] = {'a'};
  EXPECT_EQ(Fnv1a64(a, 1), 0xaf63dc4c8601ec8cULL);
}

TEST(FnvTest, ValueHashingIsOrderSensitive) {
  uint64_t fields1[] = {1, 2};
  uint64_t fields2[] = {2, 1};
  EXPECT_NE(Fnv1a64Combine(fields1, 2), Fnv1a64Combine(fields2, 2));
}

TEST(FnvTest, DistributionOverLowBits) {
  // Boundary detection masks low bits; sequential inputs must spread evenly.
  int hits = 0;
  const int kN = 1 << 16;
  for (uint64_t i = 0; i < kN; ++i) {
    uint64_t fields[] = {i, 42, 443};
    if ((Fnv1a64Combine(fields, 3) & 0xF) == 0) {
      ++hits;
    }
  }
  double frac = static_cast<double>(hits) / kN;
  EXPECT_NEAR(frac, 1.0 / 16.0, 0.01);
}

TEST(RunningStatsTest, MomentsMatchClosedForm) {
  RunningStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(i);
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_DOUBLE_EQ(s.mean(), 50.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
  EXPECT_NEAR(s.Variance(), 841.666, 0.01);
}

TEST(QuantileEstimatorTest, ExactQuantiles) {
  QuantileEstimator q;
  for (int i = 100; i >= 1; --i) {
    q.Add(i);
  }
  EXPECT_DOUBLE_EQ(q.Min(), 1.0);
  EXPECT_DOUBLE_EQ(q.Max(), 100.0);
  EXPECT_DOUBLE_EQ(q.Median(), 50.5);
  EXPECT_NEAR(q.Quantile(0.99), 99.01, 1e-9);
  EXPECT_DOUBLE_EQ(q.Mean(), 50.5);
}

TEST(QuantileEstimatorTest, FractionWithinAbs) {
  QuantileEstimator q;
  q.AddAll({-3.0, -1.0, 0.0, 0.5, 2.0});
  EXPECT_DOUBLE_EQ(q.FractionWithinAbs(1.0), 3.0 / 5.0);
  EXPECT_DOUBLE_EQ(q.FractionWithinAbs(10.0), 1.0);
}

TEST(WindowedFilterTest, MinTracksWindow) {
  WindowedMinFilter<int64_t> f(TimeDelta::Seconds(1));
  TimePoint t;
  f.Update(t, 50);
  f.Update(t + TimeDelta::Millis(100), 30);
  f.Update(t + TimeDelta::Millis(200), 40);
  EXPECT_EQ(f.Get(), 30);
  // After the 30 sample ages out, the best remaining is 40.
  f.Update(t + TimeDelta::Millis(1150), 45);
  EXPECT_EQ(f.Get(), 40);
  f.Update(t + TimeDelta::Millis(1250), 60);
  EXPECT_EQ(f.Get(), 45);
}

TEST(WindowedFilterTest, MaxTracksWindow) {
  WindowedMaxFilter<double> f(TimeDelta::Seconds(1));
  TimePoint t;
  f.Update(t, 10.0);
  f.Update(t + TimeDelta::Millis(10), 5.0);
  EXPECT_DOUBLE_EQ(f.Get(), 10.0);
  f.Update(t + TimeDelta::Millis(1500), 2.0);
  EXPECT_DOUBLE_EQ(f.Get(), 2.0);
}

TEST(FftTest, DetectsPureTone) {
  const size_t kN = 512;
  const int kBin = 26;
  std::vector<double> signal(kN);
  for (size_t i = 0; i < kN; ++i) {
    signal[i] = std::sin(2.0 * std::numbers::pi * kBin * i / kN);
  }
  std::vector<double> mags = RealFftMagnitudes(signal);
  // Energy concentrates at kBin.
  size_t argmax = 1;
  for (size_t k = 1; k < mags.size(); ++k) {
    if (mags[k] > mags[argmax]) {
      argmax = k;
    }
  }
  EXPECT_EQ(argmax, static_cast<size_t>(kBin));
  EXPECT_NEAR(mags[kBin], kN / 2.0, 1e-6);
}

TEST(FftTest, LinearityAndDc) {
  std::vector<double> signal(64, 3.0);
  std::vector<double> mags = RealFftMagnitudes(signal);
  EXPECT_NEAR(mags[0], 64 * 3.0, 1e-9);
  for (size_t k = 1; k < mags.size(); ++k) {
    EXPECT_NEAR(mags[k], 0.0, 1e-9);
  }
}

TEST(TimeSeriesTest, MeanInRangeAndDownsample) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Add(TimePoint::Zero() + TimeDelta::Millis(i * 100), i);
  }
  EXPECT_DOUBLE_EQ(ts.MeanInRange(TimePoint::Zero(), TimePoint::Zero() + TimeDelta::Millis(500)),
                   2.0);  // samples 0..4
  auto buckets = ts.Downsample(TimeDelta::Millis(500));
  ASSERT_EQ(buckets.size(), 2u);
  EXPECT_DOUBLE_EQ(buckets[0].value, 2.0);
  EXPECT_DOUBLE_EQ(buckets[1].value, 7.0);
  EXPECT_DOUBLE_EQ(ts.MaxValue(), 9.0);
}

TEST(RngTest, DeterministicPerSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
  Rng c(8);
  EXPECT_NE(Rng(7).NextU64(), c.NextU64());
}

TEST(RngTest, ExponentialMean) {
  Rng rng(3);
  double sum = 0;
  const int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    sum += rng.NextExponential(2.0);
  }
  EXPECT_NEAR(sum / kN, 2.0, 0.05);
}

TEST(RngTest, WeightedChoice) {
  Rng rng(5);
  std::vector<double> weights = {1.0, 3.0};
  int ones = 0;
  const int kN = 10000;
  for (int i = 0; i < kN; ++i) {
    if (rng.NextWeighted(weights) == 1) {
      ++ones;
    }
  }
  EXPECT_NEAR(static_cast<double>(ones) / kN, 0.75, 0.02);
}

TEST(TableTest, FormatsNumbers) {
  EXPECT_EQ(Table::Num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::Pct(0.283, 1), "28.3%");
}

TEST(RingBufferTest, FifoOrderAcrossGrowthAndWraparound) {
  RingBuffer<int> ring;
  EXPECT_TRUE(ring.empty());
  // Interleave pushes and pops so head walks around the ring while the
  // buffer grows past its initial capacity several times.
  int next_push = 0;
  int next_pop = 0;
  for (int round = 0; round < 200; ++round) {
    for (int i = 0; i < 7; ++i) {
      ring.push_back(next_push++);
    }
    for (int i = 0; i < 5; ++i) {
      EXPECT_EQ(ring.front(), next_pop);
      EXPECT_EQ(ring.pop_front(), next_pop++);
    }
  }
  EXPECT_EQ(ring.size(), 400u);
  while (!ring.empty()) {
    EXPECT_EQ(ring.pop_front(), next_pop++);
  }
  EXPECT_EQ(next_pop, next_push);
}

TEST(RingBufferTest, PopBackTrimsTheTail) {
  RingBuffer<int> ring;
  for (int i = 0; i < 10; ++i) {
    ring.push_back(i);
  }
  EXPECT_EQ(ring.back(), 9);
  EXPECT_EQ(ring.pop_back(), 9);
  EXPECT_EQ(ring.pop_front(), 0);
  EXPECT_EQ(ring.back(), 8);
  EXPECT_EQ(ring.size(), 8u);
}

TEST(RingBufferTest, MoveOnlyElementsAndContainerMove) {
  RingBuffer<std::unique_ptr<int>> ring;
  for (int i = 0; i < 40; ++i) {
    ring.push_back(std::make_unique<int>(i));
  }
  RingBuffer<std::unique_ptr<int>> moved = std::move(ring);
  EXPECT_EQ(moved.size(), 40u);
  EXPECT_EQ(*moved.pop_front(), 0);
  EXPECT_EQ(*moved.pop_back(), 39);
  moved.clear();
  EXPECT_TRUE(moved.empty());
  // A cleared ring is reusable without reallocating.
  size_t cap = moved.capacity();
  moved.push_back(std::make_unique<int>(7));
  EXPECT_EQ(moved.capacity(), cap);
  EXPECT_EQ(*moved.back(), 7);
}

TEST(RingBufferTest, SteadyStateDoesNotReallocate) {
  RingBuffer<int> ring;
  for (int i = 0; i < 48; ++i) {  // below the grown capacity
    ring.push_back(i);
  }
  size_t cap = ring.capacity();
  ASSERT_GT(cap, 48u);
  for (int i = 0; i < 10000; ++i) {
    ring.push_back(i);
    (void)ring.pop_front();
  }
  EXPECT_EQ(ring.capacity(), cap);
  EXPECT_EQ(ring.size(), 48u);
}

TEST(RingBufferTest, IndexedAccessFollowsFront) {
  RingBuffer<int> ring;
  for (int i = 0; i < 20; ++i) {
    ring.push_back(i);
  }
  for (int i = 0; i < 7; ++i) {
    (void)ring.pop_front();
  }
  ASSERT_EQ(ring.size(), 13u);
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i) + 7);
  }
  EXPECT_EQ(ring[0], ring.front());
  EXPECT_EQ(ring[ring.size() - 1], ring.back());
}

TEST(RingBufferTest, CopyPreservesOrderAndIndependence) {
  RingBuffer<int> ring;
  for (int i = 0; i < 30; ++i) {
    ring.push_back(i);
  }
  for (int i = 0; i < 10; ++i) {
    (void)ring.pop_front();  // force a wrapped layout
    ring.push_back(100 + i);
  }
  RingBuffer<int> copy = ring;
  ASSERT_EQ(copy.size(), ring.size());
  for (size_t i = 0; i < ring.size(); ++i) {
    EXPECT_EQ(copy[i], ring[i]);
  }
  copy.push_back(-1);
  EXPECT_EQ(copy.size(), ring.size() + 1);
}

TEST(SeqIntervalSetTest, MatchesSetModelUnderRandomInsertAndDrain) {
  // The receiver's out-of-order buffer: mirror the interval representation
  // against a plain std::set under random insert / contains / drain churn.
  Rng rng(5);
  SeqIntervalSet iv;
  std::set<int64_t> ref;
  int64_t cum = 0;
  for (int step = 0; step < 50000; ++step) {
    double roll = rng.NextDouble();
    if (roll < 0.70) {
      int64_t seq = cum + 1 + static_cast<int64_t>(rng.NextU64() % 64);
      EXPECT_EQ(iv.Insert(seq), ref.insert(seq).second) << "step " << step;
    } else if (roll < 0.9) {
      int64_t probe = cum + static_cast<int64_t>(rng.NextU64() % 70);
      EXPECT_EQ(iv.Contains(probe), ref.contains(probe)) << "step " << step;
    } else {
      // Drain as TcpReceiver does when the next expected segment arrives.
      ++cum;
      int64_t got = iv.DrainContiguousFrom(cum);
      auto it = ref.begin();
      while (it != ref.end() && *it == cum) {
        ++cum;
        it = ref.erase(it);
      }
      EXPECT_EQ(got, cum) << "step " << step;
      // Anything at or below the cumulative point is gone on both sides.
      EXPECT_FALSE(iv.Contains(cum)) << "step " << step;
    }
    EXPECT_EQ(iv.size(), static_cast<int64_t>(ref.size())) << "step " << step;
  }
}

TEST(SeqIntervalSetTest, AdjacentInsertsCoalesce) {
  SeqIntervalSet iv;
  EXPECT_TRUE(iv.Insert(10));
  EXPECT_TRUE(iv.Insert(12));
  EXPECT_EQ(iv.interval_count(), 2u);
  EXPECT_TRUE(iv.Insert(11));  // bridges [10,11) and [12,13)
  EXPECT_EQ(iv.interval_count(), 1u);
  EXPECT_EQ(iv.interval(0).lo, 10);
  EXPECT_EQ(iv.interval(0).hi, 13);
  EXPECT_FALSE(iv.Insert(11));  // duplicate
  EXPECT_EQ(iv.DrainContiguousFrom(9), 9);    // not contiguous: untouched
  EXPECT_EQ(iv.DrainContiguousFrom(10), 13);  // consumes the run
  EXPECT_TRUE(iv.empty());
}

}  // namespace
}  // namespace bundler
