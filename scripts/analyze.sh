#!/usr/bin/env bash
# Static analyzer + sanitizer matrix. Everything detects-and-skips: the repo
# must stay fully checkable on a GCC-only box (where only the sanitizer tiers
# run) while a Clang box additionally gets -Werror=thread-safety, clang-tidy,
# and MSan.
#
# Tiers (consistent build-<mode> tree naming):
#   clang-tidy            changed files vs origin/main (ANALYZE_ALL=1 for all)
#                         against build/compile_commands.json
#   thread-safety         Clang configure in build-clang: the GUARDED_BY /
#                         REQUIRES / capability annotations become errors
#   asan  (build-asan)    ASan+UBSan, full ctest
#   tsan  (build-tsan)    TSan, every concurrent suite
#   msan  (build-msan)    Clang-only, best-effort: without an MSan-
#                         instrumented libc++ false positives are possible,
#                         so failures WARN rather than fail the script
#
# Usage: analyze.sh [--tidy-only]
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
TIDY_ONLY=0
[[ "${1:-}" == "--tidy-only" ]] && TIDY_ONLY=1

# --- clang-tidy ------------------------------------------------------------
if command -v clang-tidy >/dev/null 2>&1; then
  echo "== clang-tidy =="
  cmake -B build -S . > /dev/null   # exports build/compile_commands.json
  if [[ "${ANALYZE_ALL:-0}" == "1" ]]; then
    mapfile -t files < <(git ls-files 'src/*.cc' 'bench/*.cc' 'tests/*.cc')
  else
    # Changed-or-all: files touched relative to the merge base when one
    # exists, everything otherwise (fresh clones, detached CI checkouts).
    base="$(git merge-base HEAD origin/main 2>/dev/null || true)"
    if [[ -n "${base}" ]]; then
      mapfile -t files < <(git diff --name-only "${base}" -- 'src/*.cc' 'bench/*.cc' 'tests/*.cc')
    else
      mapfile -t files < <(git ls-files 'src/*.cc' 'bench/*.cc' 'tests/*.cc')
    fi
  fi
  if [[ "${#files[@]}" -gt 0 ]]; then
    clang-tidy -p build --quiet "${files[@]}"
  else
    echo "clang-tidy: no changed sources"
  fi
else
  echo "== clang-tidy not installed, skipping =="
fi

# --- Clang thread-safety analysis ------------------------------------------
if command -v clang++ >/dev/null 2>&1; then
  echo "== thread-safety analysis (clang, -Werror=thread-safety) =="
  cmake -B build-clang -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
  cmake --build build-clang -j"${JOBS}"
else
  echo "== clang++ not installed, skipping thread-safety analysis =="
fi

[[ "${TIDY_ONLY}" == "1" ]] && { echo "analyze.sh: tidy-only OK"; exit 0; }

# --- sanitizer matrix ------------------------------------------------------
echo "== ASan+UBSan (build-asan) =="
cmake -B build-asan -S . -DBUNDLER_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-asan -j"${JOBS}"
(cd build-asan && ctest --output-on-failure -j"${JOBS}")

echo "== TSan (build-tsan): concurrent suites =="
cmake -B build-tsan -S . -DBUNDLER_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null
cmake --build build-tsan -j"${JOBS}" --target \
  shard_channel_test shard_runner_test partition_test runner_test \
  obs_test flow_reclaim_test
(cd build-tsan && ctest --output-on-failure --no-tests=error -R \
  'shard_channel_test|shard_runner_test|partition_test|runner_test|obs_test|flow_reclaim_test')

if command -v clang++ >/dev/null 2>&1; then
  echo "== MSan (build-msan, clang, best-effort) =="
  if cmake -B build-msan -S . -DCMAKE_CXX_COMPILER=clang++ \
       -DBUNDLER_SANITIZE=memory -DCMAKE_BUILD_TYPE=RelWithDebInfo > /dev/null \
     && cmake --build build-msan -j"${JOBS}" \
     && (cd build-msan && ctest --output-on-failure -j"${JOBS}"); then
    echo "msan: OK"
  else
    echo "msan: WARN — failures are advisory without an MSan-instrumented libc++"
  fi
else
  echo "== MSan requires clang++, skipping =="
fi

echo "analyze.sh: OK"
