#!/usr/bin/env bash
# Reproduction ratchet (check.sh tier 5): runs the headline scenarios on
# fixed seeds and asserts the paper's claims — and this repo's robustness
# claims on top of them — as ranges. Every run is byte-deterministic for a
# given seed, so the ranges are regression pins with slack for intentional
# retuning, not statistical confidence intervals:
#
#   fig10  — robust elasticity exits: phase-2 passthrough_frac >= 0.9 (the
#            pinned bundler sits at ~0.42) and the phase-3 FCT gap closed to
#            within 5% of status quo (pinned: ~+20%).
#   blackout — feedback watchdog lifecycle on a 5 s feedback blackout:
#            degrade within ~watchdog_timeout, 3-5 exponential probes,
#            re-sync within one epoch of recovery, during-fault FCT within
#            15% of status quo and p99 far below it.
#   asym   — the ~8 Mbit/s reverse-path collapse threshold survived: the
#            watchdog arm tracks status-quo FCTs at every swept rate while
#            the unprotected bundler collapses, with recovery time measured.
#   fig16  — >= 50% median self-inflicted RTT cut on every WAN path (the
#            paper reports 57%).
#   fig09  — the headline FCT claim: Bundler+SFQ cuts the median slowdown to
#            <= 0.75x status quo, lands within 15% of the in-network-FQ
#            upper bound, and FIFO-only bundling (no in-bundle FQ) stays
#            WORSE than status quo — the scheduling, not the tunnel, is the
#            win.
#   fig13  — pooled fairness across competing bundles: at both offered-load
#            splits each bundle's pooled median slowdown beats its status-quo
#            counterpart and neither bundle is starved (pooled medians over
#            the scenario's 5 seeds; single seeds legitimately wobble).
#   tenant — multi-tenant isolation (cdn_edge_flash_crowd): under a 10x
#            flash crowd on one tenant, no admitted victim tenant's FCT p50
#            degrades more than 1.2x vs its calm baseline, while the
#            unmanaged site degrades >= 3x; admission rejects the
#            over-budget tail with explicit counters.
#
# Simulates several minutes of scenario time; check.sh skips it with
# CHECK_SKIP_REPRO=1.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
RUN=./build/bundler_run
OUT=build/repro
mkdir -p "${OUT}"

for scenario in fig10_cross_traffic fig10_warm_restart feedback_blackout \
                asym_reverse_sweep fig16_wan fig09_fct cdn_edge_flash_crowd; do
  echo "repro.sh: running ${scenario}"
  "${RUN}" --scenario "${scenario}" --trials 1 --threads "${JOBS}" \
    --out "${OUT}" --quiet > /dev/null
done
# fig13's fairness claim is defined over pooled seeds (a single seed can
# legitimately starve one bundle); run its full 5-seed default.
echo "repro.sh: running fig13_competing_bundles (5 seeds, pooled)"
"${RUN}" --scenario fig13_competing_bundles --trials 5 --threads "${JOBS}" \
  --out "${OUT}" --quiet > /dev/null

python3 - "${OUT}" <<'EOF'
import json, sys

out = sys.argv[1]
failures = []

def cells(name):
    with open(f"{out}/{name}.json") as f:
        return json.load(f)["cells"]

def scalar(cell, key):
    return cell["scalars"][key]["mean"]

def pick(cs, variant, **params):
    for c in cs:
        if c["variant"] == variant and all(
            c["params"].get(k) == v for k, v in params.items()):
            return c
    raise KeyError(f"{variant} {params}")

def check(label, ok, detail):
    print(f"  {'ok  ' if ok else 'FAIL'} {label}: {detail}")
    if not ok:
        failures.append(label)

# --- fig10: robust elasticity exits close the phase-3 gap -------------------
f10 = cells("fig10_cross_traffic")
f10w = cells("fig10_warm_restart")
sq = pick(f10, "status_quo")
pinned = pick(f10, "bundler")
robust = pick(f10w, "bundler_robust")
frac = scalar(robust, "phase2_passthrough_frac")
check("fig10 robust passthrough_frac >= 0.9", frac >= 0.9, f"{frac:.3f}")
pinned_frac = scalar(pinned, "phase2_passthrough_frac")
check("fig10 pinned variant keeps the historical flaps (frac <= 0.6)",
      pinned_frac <= 0.6, f"{pinned_frac:.3f}")
r3, s3 = scalar(robust, "short_fct_phase3_ms_p50"), scalar(sq, "short_fct_phase3_ms_p50")
check("fig10 robust phase-3 FCT p50 within 5% of status quo",
      r3 <= 1.05 * s3, f"{r3:.1f} vs {s3:.1f} ms ({r3 / s3:.3f}x)")
r2t, s2t = scalar(robust, "bundle_tput_phase2_mbps"), scalar(sq, "bundle_tput_phase2_mbps")
check("fig10 robust phase-2 throughput >= 95% of status quo",
      r2t >= 0.95 * s2t, f"{r2t:.1f} vs {s2t:.1f} Mbit/s")

# --- feedback_blackout: watchdog lifecycle on a 5 s feedback blackout -------
fb = cells("feedback_blackout")
sq = pick(fb, "status_quo")
wd = pick(fb, "bundler_watchdog")
w50, s50 = scalar(wd, "short_fct_fault_ms_p50"), scalar(sq, "short_fct_fault_ms_p50")
check("blackout during-fault FCT p50 within 15% of status quo",
      w50 <= 1.15 * s50, f"{w50:.1f} vs {s50:.1f} ms")
w99, s99 = scalar(wd, "short_fct_fault_ms_p99"), scalar(sq, "short_fct_fault_ms_p99")
check("blackout during-fault FCT p99 at least 2x better than status quo",
      w99 <= 0.5 * s99, f"{w99:.1f} vs {s99:.1f} ms")
lat = scalar(wd, "wd_degrade_latency_ms")
check("blackout degrade latency ~watchdog_timeout (450-700 ms)",
      450 <= lat <= 700, f"{lat:.0f} ms")
res = scalar(wd, "wd_resync_latency_ms")
check("blackout re-sync within one epoch of recovery (<= 120 ms)",
      res <= 120, f"{res:.0f} ms")
probes = scalar(wd, "wd_probes")
check("blackout probe count matches exponential backoff (3-5)",
      3 <= probes <= 5, f"{probes:.0f}")
check("blackout watchdog recovered by end of run",
      scalar(wd, "wd_degraded_at_end") == 0,
      f"degraded_at_end={scalar(wd, 'wd_degraded_at_end'):.0f}")

# --- asym_reverse_sweep: collapse threshold survived ------------------------
asym = cells("asym_reverse_sweep")
rates = sorted({c["params"]["reverse_mbps"] for c in asym})
worst = max(
    scalar(pick(asym, "bundler_watchdog", reverse_mbps=r), "short_fct_ms_p50")
    / scalar(pick(asym, "status_quo", reverse_mbps=r), "short_fct_ms_p50")
    for r in rates)
check("asym watchdog arm FCT p50 within 25% of status quo at every rate",
      worst <= 1.25, f"worst ratio {worst:.3f}x over {rates}")
b8 = scalar(pick(asym, "bundler", reverse_mbps=8), "short_fct_ms_p50")
s8 = scalar(pick(asym, "status_quo", reverse_mbps=8), "short_fct_ms_p50")
check("asym unprotected bundler still collapses at 8 Mbit/s (threat model)",
      b8 >= 1.5 * s8, f"{b8:.0f} vs {s8:.0f} ms")
w8 = pick(asym, "bundler_watchdog", reverse_mbps=8)
check("asym watchdog completes >= 95% of status-quo requests at 8 Mbit/s",
      scalar(w8, "requests_completed")
      >= 0.95 * scalar(pick(asym, "status_quo", reverse_mbps=8), "requests_completed"),
      f"{scalar(w8, 'requests_completed'):.0f}")
check("asym watchdog measured a recovery at 8 Mbit/s",
      scalar(w8, "wd_degrades") >= 1 and scalar(w8, "wd_mean_recovery_ms") > 0,
      f"degrades={scalar(w8, 'wd_degrades'):.0f} "
      f"mean_recovery={scalar(w8, 'wd_mean_recovery_ms'):.0f} ms")

# --- fig16: median self-inflicted RTT cut (paper: 57%) ----------------------
f16 = cells("fig16_wan")
paths = sorted({c["params"]["path"] for c in f16})
cuts = []
for p in paths:
    sq50 = scalar(pick(f16, "status_quo", path=p), "rtt_ms_p50")
    b50 = scalar(pick(f16, "bundler", path=p), "rtt_ms_p50")
    cuts.append(1 - b50 / sq50)
check("fig16 median RTT cut >= 50% on every path (paper: 57%)",
      min(cuts) >= 0.50,
      " ".join(f"path{p}:{100 * c:.0f}%" for p, c in zip(paths, cuts)))

# --- fig09: headline FCT claim and the scheduling-is-the-win control --------
f09 = cells("fig09_fct")
sq = scalar(pick(f09, "status_quo"), "median_slowdown_all")
sfq = scalar(pick(f09, "bundler_sfq"), "median_slowdown_all")
fifo = scalar(pick(f09, "bundler_fifo"), "median_slowdown_all")
innet = scalar(pick(f09, "in_network"), "median_slowdown_all")
check("fig09 Bundler+SFQ median slowdown <= 0.75x status quo",
      sfq <= 0.75 * sq, f"{sfq:.3f} vs {sq:.3f} ({sfq / sq:.3f}x)")
check("fig09 Bundler+SFQ within 15% of the in-network-FQ bound",
      sfq <= 1.15 * innet, f"{sfq:.3f} vs {innet:.3f} ({sfq / innet:.3f}x)")
check("fig09 FIFO-only bundling stays worse than status quo",
      fifo >= 1.2 * sq, f"{fifo:.3f} vs {sq:.3f} ({fifo / sq:.3f}x)")
sq99 = scalar(pick(f09, "status_quo"), "p99_slowdown_all")
sfq99 = scalar(pick(f09, "bundler_sfq"), "p99_slowdown_all")
check("fig09 Bundler+SFQ p99 slowdown at least 4x better than status quo",
      sfq99 <= 0.25 * sq99, f"{sfq99:.2f} vs {sq99:.2f}")

# --- fig13: pooled fairness across competing bundles ------------------------
f13 = cells("fig13_competing_bundles")
def pooled(cell, key):
    return cell["samples"][key]["median"]
for load0 in (42, 56):
    b = pick(f13, "bundler", load0_mbps=load0)
    s = pick(f13, "status_quo", load0_mbps=load0)
    for bundle in (0, 1):
        bm = pooled(b, f"slowdown_b{bundle}")
        sm = pooled(s, f"slowdown_b{bundle}")
        check(f"fig13 split {load0}:{84 - load0} bundle {bundle} pooled median "
              f"slowdown beats status quo",
              bm <= 0.9 * sm, f"{bm:.2f} vs {sm:.2f}")
    t0, t1 = pooled(b, "tput_mbps_pooled_b0"), pooled(b, "tput_mbps_pooled_b1")
    check(f"fig13 split {load0}:{84 - load0} neither bundle starved "
          f"(pooled tput >= 25 Mbit/s, ratio <= 1.6)",
          min(t0, t1) >= 25 and max(t0, t1) / min(t0, t1) <= 1.6,
          f"{t0:.1f} / {t1:.1f} Mbit/s")

# --- tenant isolation: cdn_edge_flash_crowd ---------------------------------
cdn = cells("cdn_edge_flash_crowd")
mng = pick(cdn, "managed")
squo = pick(cdn, "status_quo")
iso_m = scalar(mng, "victim_iso_p50_ratio_max")
iso_s = scalar(squo, "victim_iso_p50_ratio_max")
check("tenant isolation: worst admitted victim FCT p50 ratio <= 1.2x under "
      "a 10x flash crowd", iso_m <= 1.2, f"{iso_m:.3f}x")
check("tenant isolation: the unmanaged site degrades >= 3x (the contrast)",
      iso_s >= 3.0, f"{iso_s:.3f}x")
check("tenant admission: full declared population admitted up to budget",
      scalar(mng, "admitted") >= 200 and scalar(mng, "rejected") >= 1,
      f"admitted={scalar(mng, 'admitted'):.0f} rejected={scalar(mng, 'rejected'):.0f}")
check("tenant admission: rejection counters attribute every rejection",
      scalar(mng, "ctr.admit.s1.rejected_budget")
      + scalar(mng, "ctr.admit.s1.rejected_cap") == scalar(mng, "rejected"),
      f"budget={scalar(mng, 'ctr.admit.s1.rejected_budget'):.0f} "
      f"cap={scalar(mng, 'ctr.admit.s1.rejected_cap'):.0f}")

if failures:
    print(f"repro.sh: FAIL — {len(failures)} claim(s) out of range")
    sys.exit(1)
EOF

echo "repro.sh: OK"
