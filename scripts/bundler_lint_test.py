#!/usr/bin/env python3
"""Self-test for bundler_lint.py: every rule must fire on a known-bad
snippet, stay quiet on the matching known-good snippet, and honor the
lint:allow escape hatch. Run directly or via scripts/lint.sh / ctest."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import bundler_lint  # noqa: E402


def lint_source(source, rel_path):
    """Lints `source` as if it lived at rel_path inside the repo."""
    with tempfile.TemporaryDirectory() as tmp:
        path = os.path.join(tmp, os.path.basename(rel_path))
        with open(path, "w", encoding="utf-8") as f:
            f.write(source)
        return bundler_lint.lint_file(path, rel_path=rel_path)


def rules_of(violations):
    return sorted({v.rule for v in violations})


class UnorderedIterationTest(unittest.TestCase):
    BAD = """
#include <unordered_map>
std::unordered_map<int, int> table_;
void Dump() {
  for (const auto& [k, v] : table_) { Use(k, v); }
}
"""

    def test_fires_on_range_for(self):
        self.assertIn("unordered-iteration",
                      rules_of(lint_source(self.BAD, "src/util/x.cc")))

    def test_fires_on_begin(self):
        src = ("std::unordered_set<int> seen_;\n"
               "auto it = seen_.begin();\n")
        self.assertIn("unordered-iteration",
                      rules_of(lint_source(src, "src/util/x.cc")))

    def test_lookup_is_fine(self):
        src = ("std::unordered_map<int, int> table_;\n"
               "int Get(int k) { return table_.at(k); }\n"
               "bool Has(int k) { return table_.count(k) != 0; }\n")
        self.assertEqual([], rules_of(lint_source(src, "src/util/x.cc")))

    def test_allow_suppresses(self):
        src = ("std::unordered_map<int, int> table_;\n"
               "for (const auto& [k, v] : table_) {}"
               "  // lint:allow(unordered-iteration)\n")
        self.assertEqual([], rules_of(lint_source(src, "src/util/x.cc")))


class PointerKeyedOrderTest(unittest.TestCase):
    def test_fires(self):
        src = "std::map<Flow*, int> by_flow_;\n"
        self.assertIn("pointer-keyed-order",
                      rules_of(lint_source(src, "src/util/x.h")))

    def test_value_keys_fine(self):
        src = "std::map<std::string, int> by_name_;\n"
        self.assertEqual([], rules_of(lint_source(src, "src/util/x.h")))

    def test_allow_suppresses(self):
        src = ("// lint:allow(pointer-keyed-order)\n"
               "std::map<Flow*, int> by_flow_;\n")
        self.assertEqual([], rules_of(lint_source(src, "src/util/x.h")))


class WallClockTest(unittest.TestCase):
    def test_fires_on_rand(self):
        src = "int jitter = rand() % 7;\n"
        self.assertIn("wall-clock", rules_of(lint_source(src, "src/cc/x.cc")))

    def test_fires_on_steady_clock(self):
        src = "auto t0 = std::chrono::steady_clock::now();\n"
        self.assertIn("wall-clock", rules_of(lint_source(src, "src/cc/x.cc")))

    def test_fires_on_time(self):
        src = "long now = time(nullptr);\n"
        self.assertIn("wall-clock", rules_of(lint_source(src, "src/cc/x.cc")))

    def test_sim_time_methods_fine(self):
        src = ("TimePoint t = sim->now();\n"
               "int64_t ns = pkt.tx_time.nanos();\n"
               "TimePoint next = q.NextTime();\n"
               "double s = obj.time();\n")
        self.assertEqual([], rules_of(lint_source(src, "src/cc/x.cc")))

    def test_allow_suppresses(self):
        src = "auto t = std::chrono::steady_clock::now();  // lint:allow(wall-clock)\n"
        self.assertEqual([], rules_of(lint_source(src, "src/cc/x.cc")))


class DatapathStdFunctionTest(unittest.TestCase):
    def test_fires_in_datapath(self):
        src = "std::function<void(Packet)> out_;\n"
        self.assertIn("datapath-std-function",
                      rules_of(lint_source(src, "src/net/x.h")))

    def test_fine_outside_datapath(self):
        src = "std::function<void(Packet)> out_;\n"
        self.assertEqual([], rules_of(lint_source(src, "src/runner/x.h")))

    def test_comment_mention_fine(self):
        src = "// std::function would heap-allocate here\nint x;\n"
        self.assertEqual([], rules_of(lint_source(src, "src/net/x.h")))

    def test_allow_suppresses(self):
        src = "std::function<void()> cb_;  // lint:allow(datapath-std-function)\n"
        self.assertEqual([], rules_of(lint_source(src, "src/net/x.h")))


class DatapathHeapAllocTest(unittest.TestCase):
    def test_fires_on_new(self):
        src = "Slot* s = new Slot[n];\n"
        self.assertIn("datapath-heap-alloc",
                      rules_of(lint_source(src, "src/transport/x.h")))

    def test_fires_on_make_unique(self):
        src = "auto q = std::make_unique<DropTailFifo>(limit);\n"
        self.assertIn("datapath-heap-alloc",
                      rules_of(lint_source(src, "src/qdisc/x.cc")))

    def test_fires_on_malloc(self):
        src = "void* p = malloc(64);\n"
        self.assertIn("datapath-heap-alloc",
                      rules_of(lint_source(src, "src/sim/x.cc")))

    def test_placement_new_fine(self):
        src = ("::new (static_cast<void*>(storage_)) Fn(std::forward<F>(f));\n"
               "new (slot) T(args);\n")
        self.assertEqual([], rules_of(lint_source(src, "src/sim/x.h")))

    def test_fine_outside_datapath(self):
        src = "auto r = std::make_unique<Report>();\n"
        self.assertEqual([], rules_of(lint_source(src, "src/runner/x.cc")))

    def test_allow_suppresses(self):
        src = "auto s = std::make_unique<Shard>();  // lint:allow(datapath-heap-alloc)\n"
        self.assertEqual([], rules_of(lint_source(src, "src/sim/x.cc")))


class RawMutexTest(unittest.TestCase):
    def test_fires_without_include(self):
        src = "std::mutex mu_;\n"
        self.assertIn("raw-mutex", rules_of(lint_source(src, "src/runner/x.cc")))

    def test_fires_without_guarded_by(self):
        src = ('#include "src/util/thread_annotations.h"\n'
               "std::mutex mu_;\n")
        self.assertIn("raw-mutex", rules_of(lint_source(src, "src/runner/x.cc")))

    def test_annotated_is_fine(self):
        src = ('#include "src/util/thread_annotations.h"\n'
               "std::mutex mu_;\n"
               "int state_ GUARDED_BY(mu_);\n")
        self.assertEqual([], rules_of(lint_source(src, "src/runner/x.cc")))

    def test_allow_suppresses(self):
        src = "static std::mutex mu;  // lint:allow(raw-mutex)\n"
        self.assertEqual([], rules_of(lint_source(src, "src/runner/x.cc")))


class EscapeHatchTest(unittest.TestCase):
    def test_allow_is_per_rule(self):
        # An allow for one rule must not blanket-suppress another on the line.
        src = "std::function<void()> f_ = [] { return rand(); };  // lint:allow(wall-clock)\n"
        rules = rules_of(lint_source(src, "src/net/x.h"))
        self.assertIn("datapath-std-function", rules)
        self.assertNotIn("wall-clock", rules)

    def test_allow_list(self):
        src = ("std::function<void()> f_ = [] { return rand(); };"
               "  // lint:allow(wall-clock, datapath-std-function)\n")
        self.assertEqual([], rules_of(lint_source(src, "src/net/x.h")))


class RepoIsCleanTest(unittest.TestCase):
    def test_src_tree_is_lint_clean(self):
        repo = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        src = os.path.join(repo, "src")
        if not os.path.isdir(src):
            self.skipTest("src/ not found")
        violations = []
        for path in bundler_lint.collect_files([src]):
            rel = os.path.relpath(path, repo)
            violations.extend(bundler_lint.lint_file(path, rel_path=rel))
        self.assertEqual([], [str(v) for v in violations])


if __name__ == "__main__":
    unittest.main()
