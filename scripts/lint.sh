#!/usr/bin/env bash
# Runs the repo-specific determinism/zero-alloc linter (scripts/bundler_lint.py)
# over src/, plus its self-test (which proves every rule still fires on known-bad
# input and that lint:allow suppresses). Part of scripts/check.sh tier 1.
set -euo pipefail
cd "$(dirname "$0")/.."

PYTHON=${PYTHON:-python3}
if ! command -v "$PYTHON" >/dev/null 2>&1; then
  echo "lint.sh: $PYTHON not found; skipping lint" >&2
  exit 0
fi

echo "== bundler_lint self-test =="
"$PYTHON" scripts/bundler_lint_test.py

echo "== bundler_lint src/ =="
"$PYTHON" scripts/bundler_lint.py src
echo "lint: clean"
