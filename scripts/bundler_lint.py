#!/usr/bin/env python3
"""Repo-specific determinism and zero-alloc lints for the bundler simulator.

The simulator's core guarantees — bit-identical runs at a fixed seed
(including across --shards values) and an allocation-free steady-state
datapath — are properties a compiler does not check. This linter enforces
the source-level discipline behind them:

  unordered-iteration   Iterating a std::unordered_{map,set} feeds
                        address-dependent order into whatever consumes the
                        loop. Lookups are fine; iteration is not. Use
                        std::map/std::vector, or sort first.
  pointer-keyed-order   std::map/std::set keyed by a raw pointer iterates in
                        address order, which varies run to run.
  wall-clock            rand()/srand()/time()/std::chrono wall clocks inject
                        nondeterminism; simulations must use the seeded
                        bundler RNG and the simulated clock.
  datapath-std-function std::function in datapath directories (src/sim,
                        src/net, src/qdisc, src/transport) heap-allocates
                        non-trivial captures; use InlineFunction /
                        InlineCallback (fixed inline storage).
  datapath-heap-alloc   new / make_unique / make_shared / malloc in datapath
                        directories. Construction-time allocation is fine but
                        must be visibly justified with lint:allow; placement
                        new (`::new (ptr)`) is exempt. Note: container
                        push_back-style growth is intentionally NOT a text
                        rule — ring buffers share that API and amortized
                        growth is vetted by the alloc-counting benches
                        instead (bench/micro_datapath.cc).
  raw-mutex             A file declaring std::mutex must include
                        src/util/thread_annotations.h and pair the mutex
                        with GUARDED_BY annotations; unannotated mutexes are
                        invisible to Clang's thread-safety analysis.
                        Function-local mutexes take a lint:allow.

Escape hatch: append `// lint:allow(<rule>)` to the offending line, or put
it alone on the line directly above. Allows are per-line and per-rule so a
grep for lint:allow audits every sanctioned exception.

Usage: bundler_lint.py [--list-rules] [paths...]
Paths default to src/. Directories are walked for *.h/*.cc. Exit status is 1
when any violation is reported, 0 otherwise.
"""

import argparse
import os
import re
import sys

DATAPATH_DIRS = ("src/sim", "src/net", "src/qdisc", "src/transport")

ALLOW_RE = re.compile(r"//\s*lint:allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")

# Matches an unordered container declaration and captures the variable name:
#   std::unordered_map<K, V> name;   (possibly with initializer)
UNORDERED_DECL_RE = re.compile(
    r"std::unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;{=(]")
UNORDERED_TYPE_RE = re.compile(r"std::unordered_(?:map|set|multimap|multiset)\b")

POINTER_KEY_RE = re.compile(r"std::(?:map|set|multimap|multiset)\s*<\s*[\w:]+\s*\*")

WALL_CLOCK_RE = re.compile(
    r"(?<![\w.>])(?:rand|srand)\s*\(|"
    r"(?<![\w.>])time\s*\(|"
    r"std::chrono::(?:system_clock|steady_clock|high_resolution_clock)|"
    r"(?<!_)(?:system_clock|steady_clock|high_resolution_clock)::")

STD_FUNCTION_RE = re.compile(r"std::function\s*<")

# `new T`, `new T[n]`, std::make_unique/make_shared, C allocators. Placement
# new (`::new (addr)` or `new (addr)`) is exempt: it constructs into storage
# the caller already owns (InlineCallback, arenas).
HEAP_ALLOC_RE = re.compile(
    r"(?<!:)\bnew\s+[A-Za-z_]|"
    r"\bmake_unique\s*<|\bmake_shared\s*<|"
    r"(?<![\w.>])(?:malloc|calloc|realloc)\s*\(")

MUTEX_DECL_RE = re.compile(r"(?<!\w)std::(?:mutex|shared_mutex|recursive_mutex)\s+\w")
THREAD_ANNOTATIONS_INCLUDE = '#include "src/util/thread_annotations.h"'

RULES = {
    "unordered-iteration": "iteration over an unordered container is address-ordered",
    "pointer-keyed-order": "pointer-keyed ordered container iterates in address order",
    "wall-clock": "wall-clock/rand in simulation code breaks fixed-seed determinism",
    "datapath-std-function": "std::function heap-allocates captures; use InlineFunction",
    "datapath-heap-alloc": "heap allocation in the datapath; justify with lint:allow",
    "raw-mutex": "std::mutex without thread_annotations.h include + GUARDED_BY",
}


def strip_comments_and_strings(line):
    """Removes // comments and the contents of string/char literals.

    Keeps the line length roughly stable so column info stays meaningful.
    Block comments are not handled (the codebase uses // exclusively).
    """
    out = []
    i = 0
    n = len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in "\"'":
            quote = c
            out.append(quote)
            i += 1
            while i < n and line[i] != quote:
                if line[i] == "\\":
                    i += 1
                i += 1
            if i < n:
                out.append(quote)
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


class Violation:
    def __init__(self, path, line_no, rule, message):
        self.path = path
        self.line_no = line_no
        self.rule = rule
        self.message = message

    def __str__(self):
        return f"{self.path}:{self.line_no}: [{self.rule}] {self.message}"


def allowed_rules(lines, idx):
    """Rules allowed for line idx (0-based): same-line or whole-line-above."""
    allowed = set()
    m = ALLOW_RE.search(lines[idx])
    if m:
        allowed.update(r.strip() for r in m.group(1).split(","))
    if idx > 0:
        prev = lines[idx - 1].strip()
        m = ALLOW_RE.fullmatch(prev) or (ALLOW_RE.search(prev)
                                         if prev.startswith("//") else None)
        if m:
            allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def is_datapath(path):
    rel = path.replace(os.sep, "/")
    return any(f"/{d}/" in f"/{rel}" or rel.startswith(d + "/")
               for d in DATAPATH_DIRS)


def lint_file(path, rel_path=None):
    rel = rel_path or path
    try:
        with open(path, encoding="utf-8", errors="replace") as f:
            raw_lines = f.read().splitlines()
    except OSError as e:
        return [Violation(rel, 0, "io", str(e))]

    code_lines = [strip_comments_and_strings(l) for l in raw_lines]
    datapath = is_datapath(rel)
    violations = []

    def report(idx, rule, message):
        if rule not in allowed_rules(raw_lines, idx):
            violations.append(Violation(rel, idx + 1, rule, message))

    # Pass 1: collect unordered-container variable names (file-local
    # heuristic scope: members and locals alike).
    unordered_vars = set()
    for code in code_lines:
        for m in UNORDERED_DECL_RE.finditer(code):
            unordered_vars.add(m.group(1))

    iter_res = []
    for v in sorted(unordered_vars):
        # range-for over the container, or explicit iterator walk.
        iter_res.append((v, re.compile(
            rf"for\s*\([^;)]*:\s*{re.escape(v)}\s*\)|"
            rf"{re.escape(v)}\s*\.\s*(?:begin|cbegin|rbegin)\s*\(")))

    has_annotations_include = any(
        THREAD_ANNOTATIONS_INCLUDE in l for l in raw_lines)
    has_guarded_by = any(re.search(r"\bGUARDED_BY\s*\(", c)
                         for c in code_lines)

    for idx, code in enumerate(code_lines):
        if not code.strip():
            continue

        for var, rx in iter_res:
            if rx.search(code):
                report(idx, "unordered-iteration",
                       f"iterating unordered container '{var}' yields "
                       "address-dependent order")

        if POINTER_KEY_RE.search(code):
            report(idx, "pointer-keyed-order",
                   "ordered container keyed by raw pointer iterates in "
                   "address order")

        if WALL_CLOCK_RE.search(code):
            report(idx, "wall-clock",
                   "wall-clock/rand source; use the seeded RNG and the "
                   "simulated clock")

        if datapath and STD_FUNCTION_RE.search(code):
            report(idx, "datapath-std-function",
                   "std::function in the datapath; use InlineFunction or "
                   "InlineCallback")

        if datapath and HEAP_ALLOC_RE.search(code):
            report(idx, "datapath-heap-alloc",
                   "heap allocation in the datapath; move it to "
                   "construction time and justify with lint:allow")

        if MUTEX_DECL_RE.search(code):
            if not has_annotations_include:
                report(idx, "raw-mutex",
                       "std::mutex in a file that does not include "
                       "src/util/thread_annotations.h")
            elif not has_guarded_by:
                report(idx, "raw-mutex",
                       "std::mutex with no GUARDED_BY annotations in this "
                       "file; annotate what it protects")

    return violations


def collect_files(paths):
    files = []
    for p in paths:
        if os.path.isdir(p):
            for root, _, names in os.walk(p):
                for name in sorted(names):
                    if name.endswith((".h", ".cc")):
                        files.append(os.path.join(root, name))
        else:
            files.append(p)
    return sorted(set(files))


def main(argv=None):
    parser = argparse.ArgumentParser(
        description="bundler determinism/zero-alloc linter")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories (default: src)")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule, desc in sorted(RULES.items()):
            print(f"{rule}: {desc}")
        return 0

    violations = []
    for path in collect_files(args.paths or ["src"]):
        violations.extend(lint_file(path))

    for v in violations:
        print(v)
    if violations:
        print(f"bundler_lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
