#!/usr/bin/env bash
# CI entrypoint: configure + build + unit tests (plain and ASan+UBSan),
# plus one smoke scenario run, including the thread-count determinism
# guarantee (same seed => byte-identical aggregate JSON regardless of
# --threads). Set CHECK_SKIP_SANITIZERS=1 to skip the sanitizer pass (e.g.
# on machines without libasan).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

if [[ "${CHECK_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "--- ASan+UBSan test pass"
  cmake -B build-asan -S . -DBUNDLER_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"${JOBS}"
  (cd build-asan && ctest --output-on-failure -j"${JOBS}")
  # The SACK scoreboard and its users manage raw ring storage; run their
  # suites explicitly so an accidental ctest filter can never skip them
  # under the sanitizers.
  (cd build-asan && ctest --output-on-failure --no-tests=error -R \
    'sack_scoreboard_test|tcp_recovery_test|transport_test')
fi

echo "--- topology construction smoke: --dump-topology for every scenario"
for scenario in $(./build/bundler_run --list-names); do
  ./build/bundler_run --dump-topology "${scenario}" > /dev/null
  echo "  ${scenario}: topology OK"
done

echo "--- smoke scenario: link_flap (1 trial — exercises zero-rate park/unpark)"
./build/bundler_run --scenario link_flap --trials 1 --threads 2 \
  --out build/smoke_flap_t2 --quiet
./build/bundler_run --scenario link_flap --trials 1 --threads 4 \
  --out build/smoke_flap_t4 --quiet > /dev/null
cmp build/smoke_flap_t2/link_flap.json build/smoke_flap_t4/link_flap.json

echo "--- smoke scenario: fig09_fct (2 trials, 2 threads)"
./build/bundler_run --scenario fig09_fct --trials 2 --threads 2 \
  --out build/smoke_t2 --quiet

echo "--- determinism: same seeds on 4 threads must match byte-for-byte"
./build/bundler_run --scenario fig09_fct --trials 2 --threads 4 \
  --out build/smoke_t4 --quiet > /dev/null
cmp build/smoke_t2/fig09_fct.json build/smoke_t4/fig09_fct.json
cmp build/smoke_t2/fig09_fct.csv build/smoke_t4/fig09_fct.csv

echo "check.sh: OK"
