#!/usr/bin/env bash
# CI entrypoint, tiered:
#   0. lint       — scripts/lint.sh (determinism/zero-alloc rules + self-test)
#   1. build+test — plain build, full ctest
#   2. sanitizers — ASan+UBSan full suite, TSan over every concurrent suite
#   3. analyzers  — scripts/analyze.sh --tidy-only when clang-tidy exists
#   4. smoke      — scenario runs with byte-identity determinism checks
#   5. repro      — scripts/repro.sh asserts the paper's headline claims
# Set CHECK_SKIP_SANITIZERS=1 to skip tier 2 (e.g. on machines without
# libasan); CHECK_SKIP_REPRO=1 to skip tier 5 (it simulates several minutes
# of scenario time).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"

echo "--- lint tier: determinism/zero-alloc rules"
./scripts/lint.sh

cmake -B build -S .
cmake --build build -j"${JOBS}"
(cd build && ctest --output-on-failure -j"${JOBS}")

if [[ "${CHECK_SKIP_SANITIZERS:-0}" != "1" ]]; then
  echo "--- ASan+UBSan test pass"
  cmake -B build-asan -S . -DBUNDLER_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-asan -j"${JOBS}"
  (cd build-asan && ctest --output-on-failure -j"${JOBS}")
  # The SACK scoreboard and its users manage raw ring storage; run their
  # suites explicitly so an accidental ctest filter can never skip them
  # under the sanitizers.
  (cd build-asan && ctest --output-on-failure --no-tests=error -R \
    'sack_scoreboard_test|tcp_recovery_test|transport_test')

  echo "--- TSan pass: every suite that spawns threads or crosses shards"
  # shard_channel/shard_runner: SPSC rings and the CMB null-message protocol;
  # partition/runner/integration-adjacent suites: TrialRunner worker pool and
  # sharded trials; obs: trace capture under the worker pool; flow_reclaim:
  # FlowTable, whose arena is mutex-guarded.
  TSAN_SUITES='shard_channel_test|shard_runner_test|partition_test|runner_test|obs_test|flow_reclaim_test'
  cmake -B build-tsan -S . -DBUNDLER_SANITIZE=thread -DCMAKE_BUILD_TYPE=RelWithDebInfo
  cmake --build build-tsan -j"${JOBS}" --target \
    shard_channel_test shard_runner_test partition_test runner_test \
    obs_test flow_reclaim_test
  (cd build-tsan && ctest --output-on-failure --no-tests=error -R "${TSAN_SUITES}")
fi

if command -v clang-tidy >/dev/null 2>&1; then
  echo "--- analyzer tier: clang-tidy over changed files"
  ./scripts/analyze.sh --tidy-only
else
  echo "--- analyzer tier: clang-tidy not installed, skipping"
fi

echo "--- topology construction smoke: --dump-topology for every scenario"
for scenario in $(./build/bundler_run --list-names); do
  ./build/bundler_run --dump-topology "${scenario}" > /dev/null
  echo "  ${scenario}: topology OK"
done

# Result files carry one wall-clock "runtime" line (events/sec metadata) that
# is legitimately nondeterministic; strip it before byte-comparing runs.
stable() { grep -v '"runtime"' "$1" | grep -v '^# runtime '; }

echo "--- smoke scenario: link_flap (1 trial — exercises zero-rate park/unpark)"
./build/bundler_run --scenario link_flap --trials 1 --threads 2 \
  --out build/smoke_flap_t2 --quiet
./build/bundler_run --scenario link_flap --trials 1 --threads 4 \
  --out build/smoke_flap_t4 --quiet > /dev/null
cmp <(stable build/smoke_flap_t2/link_flap.json) \
    <(stable build/smoke_flap_t4/link_flap.json)

echo "--- smoke scenario: fig09_fct (2 trials, 2 threads)"
./build/bundler_run --scenario fig09_fct --trials 2 --threads 2 \
  --out build/smoke_t2 --quiet

echo "--- determinism: same seeds on 4 threads must match byte-for-byte"
./build/bundler_run --scenario fig09_fct --trials 2 --threads 4 \
  --out build/smoke_t4 --quiet > /dev/null
cmp <(stable build/smoke_t2/fig09_fct.json) <(stable build/smoke_t4/fig09_fct.json)
cmp <(stable build/smoke_t2/fig09_fct.csv) <(stable build/smoke_t4/fig09_fct.csv)

echo "--- parallel DES: --shards 1 vs --shards 4 must be byte-identical"
# fig09's dumbbell is one indivisible shard (--shards just validates that);
# fat_tree_incast genuinely partitions into 6 shards run by 4 workers.
./build/bundler_run --scenario fig09_fct --trials 1 --shards 1 \
  --out build/smoke_s1 --quiet
./build/bundler_run --scenario fig09_fct --trials 1 --shards 4 \
  --out build/smoke_s4 --quiet > /dev/null
cmp <(stable build/smoke_s1/fig09_fct.json) <(stable build/smoke_s4/fig09_fct.json)
./build/bundler_run --scenario fat_tree_incast --trials 2 --shards 1 \
  --out build/smoke_ft_s1 --quiet
./build/bundler_run --scenario fat_tree_incast --trials 2 --shards 4 \
  --out build/smoke_ft_s4 --quiet > /dev/null
cmp <(stable build/smoke_ft_s1/fat_tree_incast.json) \
    <(stable build/smoke_ft_s4/fat_tree_incast.json)
cmp <(stable build/smoke_ft_s1/fat_tree_incast.csv) \
    <(stable build/smoke_ft_s4/fat_tree_incast.csv)

echo "--- golden byte-identity: the 1-tenant facade must match the pre-split sendbox"
# tests/golden/ holds fig09/fig10/fig13 outputs pinned before the sendbox was
# split into BundleController + SiteEgress + SendboxManager. The refactor's
# core contract is that the classic facade is bit-for-bit unchanged: same
# seeds, same JSON and CSV, forever. Regenerate the pins ONLY for an
# intentional, explained behavior change.
for scenario in fig09_fct fig10_cross_traffic fig13_competing_bundles; do
  ./build/bundler_run --scenario "${scenario}" --trials 1 \
    --out build/smoke_golden --quiet > /dev/null
  cmp <(stable "build/smoke_golden/${scenario}.json") \
      <(stable "tests/golden/${scenario}.json")
  cmp <(stable "build/smoke_golden/${scenario}.csv") \
      <(stable "tests/golden/${scenario}.csv")
  echo "  ${scenario}: golden OK"
done

echo "--- smoke scenario: cdn_edge_flash_crowd (multi-tenant admission + isolation)"
# 200+ tenant bundles through one SendboxManager: admission must reject the
# over-budget tail with explicit counters, and the run must stay
# byte-identical across worker threads and conservative shards.
./build/bundler_run --scenario cdn_edge_flash_crowd --trials 1 \
  --out build/smoke_cdn --quiet
./build/bundler_run --scenario cdn_edge_flash_crowd --trials 1 --threads 4 \
  --out build/smoke_cdn_t4 --quiet > /dev/null
cmp <(stable build/smoke_cdn/cdn_edge_flash_crowd.json) \
    <(stable build/smoke_cdn_t4/cdn_edge_flash_crowd.json)
cmp <(stable build/smoke_cdn/cdn_edge_flash_crowd.csv) \
    <(stable build/smoke_cdn_t4/cdn_edge_flash_crowd.csv)
./build/bundler_run --scenario cdn_edge_flash_crowd --trials 1 --shards 4 \
  --out build/smoke_cdn_s4 --quiet > /dev/null
cmp <(stable build/smoke_cdn/cdn_edge_flash_crowd.json) \
    <(stable build/smoke_cdn_s4/cdn_edge_flash_crowd.json)
python3 - build/smoke_cdn/cdn_edge_flash_crowd.json <<'EOF'
import json, sys
cells = json.load(open(sys.argv[1]))["cells"]
managed = next(c for c in cells if c["variant"] == "managed")
s = {k: v["mean"] for k, v in managed["scalars"].items()}
assert s["admitted"] >= 200, s
assert s["rejected"] >= 1, s
assert s["ctr.admit.s1.rejected_budget"] == s["rejected"], s
print(f"  admission: {s['admitted']:.0f} admitted, "
      f"{s['rejected']:.0f} rejected (budget), counters agree")
EOF

echo "--- smoke scenario: feedback_blackout (faulted control loop + watchdog)"
# A faulted run must stay byte-identical across thread and shard counts: the
# injector draws RNG only for targeted packets in arrival order, which the
# determinism contract fixes.
./build/bundler_run --scenario feedback_blackout --trials 1 --threads 2 \
  --out build/smoke_fault_t2 --quiet
./build/bundler_run --scenario feedback_blackout --trials 1 --threads 4 \
  --out build/smoke_fault_t4 --quiet > /dev/null
cmp <(stable build/smoke_fault_t2/feedback_blackout.json) \
    <(stable build/smoke_fault_t4/feedback_blackout.json)
./build/bundler_run --scenario feedback_blackout --trials 1 --shards 4 \
  --out build/smoke_fault_s4 --quiet > /dev/null
cmp <(stable build/smoke_fault_t2/feedback_blackout.json) \
    <(stable build/smoke_fault_s4/feedback_blackout.json)

echo "--- traced scenario: fig02_queue_shift with the flight recorder armed"
./build/bundler_run --scenario fig02_queue_shift --trace all --threads 2 \
  --out build/smoke_trace_t2 --quiet
./build/bundler_run --scenario fig02_queue_shift --trace all --threads 4 \
  --out build/smoke_trace_t4 --quiet > /dev/null
TRACE=build/smoke_trace_t2/fig02_queue_shift.trace.jsonl
test -s "${TRACE}"

echo "--- trace JSONL schema: every line is a typed record with mandatory keys"
awk '
  /^\{"type":"trial","signature":".+"\}$/ { trials++; next }
  /^\{"type":"component","id":[0-9]+,"kind":"[a-z_]+","name":".*"\}$/ { next }
  /^\{"type":"record","t_ns":-?[0-9]+,"cat":"[a-z]+","ev":"[a-z_]+","comp":[0-9]+,"a":[0-9]+,"b":[0-9]+,"c":[0-9]+\}$/ { records++; next }
  /^\{"type":"trace_end","records":[0-9]+,"dropped":[0-9]+\}$/ { ends++; next }
  { print "check.sh: FAIL — bad trace line " NR ": " $0; exit 1 }
  END {
    if (trials < 1 || records < 1 || trials != ends) {
      print "check.sh: FAIL — trace missing sections (trials=" trials \
            " records=" records " trace_ends=" ends ")"
      exit 1
    }
  }
' "${TRACE}"

echo "--- trace determinism: byte-identical at --threads 2 vs 4"
cmp "${TRACE}" build/smoke_trace_t4/fig02_queue_shift.trace.jsonl

if [[ "${CHECK_SKIP_REPRO:-0}" != "1" ]]; then
  echo "--- repro tier: headline claims as asserted ranges"
  ./scripts/repro.sh
else
  echo "--- repro tier: skipped (CHECK_SKIP_REPRO=1)"
fi

echo "check.sh: OK"
