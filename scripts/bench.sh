#!/usr/bin/env bash
# Performance gate: builds Release, runs the micro_datapath benchmark, and
# emits BENCH_datapath.json (events/sec, per-op ns, allocs/op) so successive
# PRs have a perf trajectory to compare against.
#
# Fails if the event engine's schedule+dispatch microbenchmark is not at
# least BENCH_MIN_SPEEDUP (default 2.0) times the legacy std::function
# queue's events/sec, or if the engine allocates on the hot path.
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-2.0}"
OUT="${BENCH_OUT:-BENCH_datapath.json}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"${JOBS}" --target micro_datapath

# micro_datapath exits nonzero on its own if the engine allocated per event.
./build-release/bench/micro_datapath --json "${OUT}"

SPEEDUP="$(python3 -c "import json; print(json.load(open('${OUT}'))['schedule_dispatch_speedup_vs_legacy'])" 2>/dev/null ||
  grep -o '"schedule_dispatch_speedup_vs_legacy": [0-9.]*' "${OUT}" | grep -o '[0-9.]*$')"

echo "schedule+dispatch speedup vs legacy queue: ${SPEEDUP}x (gate: >= ${MIN_SPEEDUP}x)"
awk -v s="${SPEEDUP}" -v min="${MIN_SPEEDUP}" 'BEGIN { exit !(s >= min) }' || {
  echo "bench.sh: FAIL — speedup ${SPEEDUP}x below gate ${MIN_SPEEDUP}x" >&2
  exit 1
}
echo "bench.sh: OK (wrote ${OUT})"
