#!/usr/bin/env bash
# Performance gate: builds Release, runs the micro_datapath benchmark, and
# emits BENCH_datapath.json (events/sec, per-op ns, allocs/op) so successive
# PRs have a perf trajectory to compare against.
#
# Fails if the event engine's schedule+dispatch microbenchmark is not at
# least BENCH_MIN_SPEEDUP (default 2.0) times the legacy std::function
# queue's events/sec, if the engine allocates on the hot path, or if the
# datapath regresses on allocations: end_to_end_experiment must stay at or
# below BENCH_MAX_E2E_ALLOCS (default 0.01) allocs per simulator event, and
# the qdisc/tcp churn microbenchmarks must stay allocation-free (<= 0.001
# allocs/op, i.e. zero modulo one-off ring growth).
#
# Observability gates (PR 6): the flight recorder must record with zero heap
# allocations per record when enabled (trace_record_enabled <=
# BENCH_MAX_TRACE_ALLOCS, default 0.001), and the tracing-disabled overhead
# bound on end_to_end_experiment (branch-only hook cost x records/event over
# untraced per-event cost) must stay at or below BENCH_MAX_TRACE_OVERHEAD
# (default 0.02, i.e. 2%).
#
# Fault-injection gates (PR 9): the faulted datapath must stay
# allocation-free (fault_injector_churn joins the churn rows), and the
# fault-disabled overhead bound (untargeted fast-path cost per packet over
# the untraced per-event cost) must stay at or below
# BENCH_MAX_FAULT_OVERHEAD (default 0.02, i.e. 2%).
#
# Multi-tenant sendbox gates (PR 10): the site-egress hierarchy's datapath
# churn (site_egress_churn) joins the allocation-free rows, and the classic
# 1-tenant facade — now a thin wrapper over a 1-tenant SendboxManager
# hierarchy — must cost at most BENCH_MAX_MANAGER_OVERHEAD (default 0.02,
# i.e. 2%) extra wall time vs the pre-split sendbox on the identical
# paper-default run.
#
# Parallel-DES gates (PR 7): batched same-timestamp dispatch must beat
# one-at-a-time head pops by BENCH_MIN_BURST_SPEEDUP (default 1.2x), the
# flow-reclaim and boundary-ring churn rows must be allocation-free, and the
# sharded fat-tree run at 4 workers must reach BENCH_MIN_PARALLEL_SPEEDUP
# times the 1-worker events/sec — defaulting to 2.0x with >= 4 cores and to
# 0.5x otherwise (a box without parallelism can only demonstrate that the
# conservative sync does not collapse throughput, not a speedup).
set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 2)"
MIN_SPEEDUP="${BENCH_MIN_SPEEDUP:-2.0}"
MIN_BURST_SPEEDUP="${BENCH_MIN_BURST_SPEEDUP:-1.2}"
if [[ "${JOBS}" -ge 4 ]]; then
  MIN_PARALLEL_SPEEDUP="${BENCH_MIN_PARALLEL_SPEEDUP:-2.0}"
else
  MIN_PARALLEL_SPEEDUP="${BENCH_MIN_PARALLEL_SPEEDUP:-0.5}"
fi
MAX_E2E_ALLOCS="${BENCH_MAX_E2E_ALLOCS:-0.01}"
MAX_CHURN_ALLOCS="${BENCH_MAX_CHURN_ALLOCS:-0.001}"
MAX_TRACE_ALLOCS="${BENCH_MAX_TRACE_ALLOCS:-0.001}"
MAX_TRACE_OVERHEAD="${BENCH_MAX_TRACE_OVERHEAD:-0.02}"
MAX_FAULT_OVERHEAD="${BENCH_MAX_FAULT_OVERHEAD:-0.02}"
MAX_MANAGER_OVERHEAD="${BENCH_MAX_MANAGER_OVERHEAD:-0.02}"
OUT="${BENCH_OUT:-BENCH_datapath.json}"

cmake -B build-release -S . -DCMAKE_BUILD_TYPE=Release
cmake --build build-release -j"${JOBS}" --target micro_datapath

# micro_datapath exits nonzero on its own if the engine allocated per event.
./build-release/bench/micro_datapath --json "${OUT}"

SPEEDUP="$(python3 -c "import json; print(json.load(open('${OUT}'))['schedule_dispatch_speedup_vs_legacy'])" 2>/dev/null ||
  grep -o '"schedule_dispatch_speedup_vs_legacy": [0-9.]*' "${OUT}" | grep -o '[0-9.]*$')"

echo "schedule+dispatch speedup vs legacy queue: ${SPEEDUP}x (gate: >= ${MIN_SPEEDUP}x)"
awk -v s="${SPEEDUP}" -v min="${MIN_SPEEDUP}" 'BEGIN { exit !(s >= min) }' || {
  echo "bench.sh: FAIL — speedup ${SPEEDUP}x below gate ${MIN_SPEEDUP}x" >&2
  exit 1
}

# Allocation gates: a regression that reintroduces per-event heap churn on
# the datapath (scoreboard, qdisc queues, engine) must fail loudly.
alloc_of() {
  grep -o "\"name\": \"$1\"[^}]*" "${OUT}" | grep -o '"allocs_per_op": [0-9.]*' |
    grep -o '[0-9.]*$'
}
E2E_ALLOCS="$(alloc_of end_to_end_experiment)"
echo "end_to_end_experiment allocs/event: ${E2E_ALLOCS} (gate: <= ${MAX_E2E_ALLOCS})"
awk -v a="${E2E_ALLOCS}" -v max="${MAX_E2E_ALLOCS}" 'BEGIN { exit !(a <= max) }' || {
  echo "bench.sh: FAIL — end_to_end_experiment ${E2E_ALLOCS} allocs/event above gate ${MAX_E2E_ALLOCS}" >&2
  exit 1
}
for bench in qdisc_droptail_churn qdisc_sfq_churn qdisc_fq_codel_churn \
             qdisc_strict_prio_churn site_egress_churn tcp_recovery_churn \
             link_event_rearm_churn flow_reclaim_churn boundary_ring_churn \
             fault_injector_churn; do
  ALLOCS="$(alloc_of "${bench}")"
  awk -v a="${ALLOCS}" -v max="${MAX_CHURN_ALLOCS}" 'BEGIN { exit !(a <= max) }' || {
    echo "bench.sh: FAIL — ${bench} ${ALLOCS} allocs/op above gate ${MAX_CHURN_ALLOCS}" >&2
    exit 1
  }
  echo "${bench} allocs/op: ${ALLOCS} (gate: <= ${MAX_CHURN_ALLOCS})"
done

# Batched same-timestamp dispatch must stay a win over serial head pops.
BURST_SPEEDUP="$(grep -o '"same_time_burst_speedup": [0-9.]*' "${OUT}" |
  grep -o '[0-9.]*$')"
echo "same-time burst batched speedup: ${BURST_SPEEDUP}x (gate: >= ${MIN_BURST_SPEEDUP}x)"
awk -v s="${BURST_SPEEDUP}" -v min="${MIN_BURST_SPEEDUP}" 'BEGIN { exit !(s >= min) }' || {
  echo "bench.sh: FAIL — same-time burst speedup ${BURST_SPEEDUP}x below gate ${MIN_BURST_SPEEDUP}x" >&2
  exit 1
}

# Conservative parallel DES: 4 workers vs 1 on the sharded fat tree.
PDES_SPEEDUP="$(grep -o '"parallel_des_speedup_w4_over_w1": [0-9.]*' "${OUT}" |
  grep -o '[0-9.]*$')"
echo "parallel DES 4-worker speedup: ${PDES_SPEEDUP}x (gate: >= ${MIN_PARALLEL_SPEEDUP}x on ${JOBS} cores)"
awk -v s="${PDES_SPEEDUP}" -v min="${MIN_PARALLEL_SPEEDUP}" 'BEGIN { exit !(s >= min) }' || {
  echo "bench.sh: FAIL — parallel DES speedup ${PDES_SPEEDUP}x below gate ${MIN_PARALLEL_SPEEDUP}x" >&2
  exit 1
}

# Observability gates: recording must be allocation-free, and instrumented
# hooks must be effectively free when tracing is off.
TRACE_ALLOCS="$(alloc_of trace_record_enabled)"
echo "trace_record_enabled allocs/record: ${TRACE_ALLOCS} (gate: <= ${MAX_TRACE_ALLOCS})"
awk -v a="${TRACE_ALLOCS}" -v max="${MAX_TRACE_ALLOCS}" 'BEGIN { exit !(a <= max) }' || {
  echo "bench.sh: FAIL — trace_record_enabled ${TRACE_ALLOCS} allocs/record above gate ${MAX_TRACE_ALLOCS}" >&2
  exit 1
}
TRACE_OVERHEAD="$(grep -o '"tracing_disabled_overhead_frac": [0-9.]*' "${OUT}" |
  grep -o '[0-9.]*$')"
echo "tracing-disabled overhead bound: ${TRACE_OVERHEAD} (gate: <= ${MAX_TRACE_OVERHEAD})"
awk -v o="${TRACE_OVERHEAD}" -v max="${MAX_TRACE_OVERHEAD}" 'BEGIN { exit !(o <= max) }' || {
  echo "bench.sh: FAIL — tracing-disabled overhead ${TRACE_OVERHEAD} above gate ${MAX_TRACE_OVERHEAD}" >&2
  exit 1
}

# Fault-injection gate: declaring profiles must be ~free for untargeted
# traffic (links with no profile have no injector in their chain at all).
FAULT_OVERHEAD="$(grep -o '"fault_disabled_overhead_frac": [0-9.]*' "${OUT}" |
  grep -o '[0-9.]*$')"
echo "fault-disabled overhead bound: ${FAULT_OVERHEAD} (gate: <= ${MAX_FAULT_OVERHEAD})"
awk -v o="${FAULT_OVERHEAD}" -v max="${MAX_FAULT_OVERHEAD}" 'BEGIN { exit !(o <= max) }' || {
  echo "bench.sh: FAIL — fault-disabled overhead ${FAULT_OVERHEAD} above gate ${MAX_FAULT_OVERHEAD}" >&2
  exit 1
}

# Multi-tenant sendbox gates: the 1-tenant facade must stay within a few
# percent of the pre-split sendbox (same workload, same duration), and the
# managed experiment must not reintroduce per-event heap churn.
MANAGER_OVERHEAD="$(grep -o '"manager_one_tenant_overhead_frac": [0-9.]*' "${OUT}" |
  grep -o '[0-9.]*$')"
echo "manager 1-tenant overhead vs classic sendbox: ${MANAGER_OVERHEAD} (gate: <= ${MAX_MANAGER_OVERHEAD})"
awk -v o="${MANAGER_OVERHEAD}" -v max="${MAX_MANAGER_OVERHEAD}" 'BEGIN { exit !(o <= max) }' || {
  echo "bench.sh: FAIL — manager 1-tenant overhead ${MANAGER_OVERHEAD} above gate ${MAX_MANAGER_OVERHEAD}" >&2
  exit 1
}
MANAGED_ALLOCS="$(alloc_of sendbox_managed_experiment)"
echo "sendbox_managed_experiment allocs/event: ${MANAGED_ALLOCS} (gate: <= ${MAX_E2E_ALLOCS})"
awk -v a="${MANAGED_ALLOCS}" -v max="${MAX_E2E_ALLOCS}" 'BEGIN { exit !(a <= max) }' || {
  echo "bench.sh: FAIL — sendbox_managed_experiment ${MANAGED_ALLOCS} allocs/event above gate ${MAX_E2E_ALLOCS}" >&2
  exit 1
}

echo "bench.sh: OK (wrote ${OUT})"
